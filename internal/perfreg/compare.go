package perfreg

import (
	"fmt"
	"sort"
	"strings"
)

// CompareOptions tunes the gate. Zero values select the defaults.
type CompareOptions struct {
	// HostThreshold is the fractional host-metric regression that fails
	// the gate (default 0.10 = +10%).
	HostThreshold float64
	// Alpha is the significance level a host regression must reach before
	// it can fail the gate (default 0.05). Below-threshold or
	// insignificant changes pass with a "~" note, benchstat-style.
	Alpha float64
	// Confidence is the level of the reported mean confidence intervals
	// (default 0.95).
	Confidence float64
	// SimOnly skips the host-metric comparison entirely — the mode CI
	// uses, where wall-clock numbers from different machines are
	// meaningless but instruction counts must match exactly. The
	// allocation benchmarks still gate: allocs/op is deterministic on any
	// machine.
	SimOnly bool
}

func (o *CompareOptions) defaults() {
	if o.HostThreshold == 0 {
		o.HostThreshold = 0.10
	}
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
	if o.Confidence == 0 {
		o.Confidence = 0.95
	}
}

// Delta is one compared metric.
type Delta struct {
	Scenario string `json:"scenario"`
	Metric   string `json:"metric"`
	// Kind is "sim" (deterministic, exact-equality gate) or "host"
	// (noisy, statistical gate).
	Kind string  `json:"kind"`
	Old  float64 `json:"old"`
	New  float64 `json:"new"`
	// OldCI and NewCI are confidence-interval half-widths (host only).
	OldCI float64 `json:"old_ci,omitempty"`
	NewCI float64 `json:"new_ci,omitempty"`
	// Frac is the fractional change (New-Old)/Old.
	Frac float64 `json:"frac,omitempty"`
	// P is the Welch two-sided p-value (host only; 1 when untestable).
	P  float64 `json:"p,omitempty"`
	OK bool    `json:"ok"`
	// Note explains the verdict ("exact", "~ p=0.41", "REGRESSION +23%").
	Note string `json:"note"`
}

// Report is a full snapshot comparison.
type Report struct {
	Deltas []Delta `json:"deltas"`
	// Pass is false if any delta failed its gate.
	Pass bool `json:"pass"`
	// SimChecked and SimEqual count the exact-equality comparisons.
	SimChecked int `json:"sim_checked"`
	SimEqual   int `json:"sim_equal"`
}

// Failing returns the deltas that failed their gate, in report order.
func (r *Report) Failing() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if !d.OK {
			out = append(out, d)
		}
	}
	return out
}

// Compare gates a new snapshot against an old one. Sim metrics must match
// exactly; host metrics may regress up to the threshold (or more, if the
// change is statistically insignificant at alpha).
func Compare(oldSnap, newSnap *Snapshot, opt CompareOptions) (*Report, error) {
	opt.defaults()
	if oldSnap.Words != newSnap.Words || oldSnap.NetloadCycles != newSnap.NetloadCycles {
		return nil, fmt.Errorf("perfreg: snapshots are incomparable: words %d vs %d, netload cycles %d vs %d",
			oldSnap.Words, newSnap.Words, oldSnap.NetloadCycles, newSnap.NetloadCycles)
	}
	rep := &Report{Pass: true}
	// Host samples recorded at different worker counts are incomparable —
	// parallel repetitions time scheduler contention along with the work —
	// so the host gate only runs between same-parallelism snapshots.
	compareHosts := !opt.SimOnly && oldSnap.parallelism() == newSnap.parallelism()
	if !opt.SimOnly && !compareHosts {
		rep.Deltas = append(rep.Deltas, Delta{
			Scenario: "-", Metric: "-", Kind: "host", OK: true,
			Note: fmt.Sprintf("host metrics not gated: snapshots recorded at parallelism %d vs %d",
				oldSnap.parallelism(), newSnap.parallelism()),
		})
	}
	newByName := make(map[string]*ScenarioResult, len(newSnap.Scenarios))
	for i := range newSnap.Scenarios {
		newByName[newSnap.Scenarios[i].Name] = &newSnap.Scenarios[i]
	}
	for i := range oldSnap.Scenarios {
		o := &oldSnap.Scenarios[i]
		n, ok := newByName[o.Name]
		if !ok {
			rep.fail(Delta{Scenario: o.Name, Metric: "-", Kind: "sim", Note: "scenario missing from new snapshot"})
			continue
		}
		compareSim(rep, o, n)
		if compareHosts {
			compareHost(rep, o, n, opt)
		}
	}
	compareBenches(rep, oldSnap.Benches, newSnap.Benches)
	gateIdleSpeedup(rep, newSnap.Benches)
	gateShardSpeedup(rep, newSnap)
	return rep, nil
}

// idleSpeedupFloor is the minimum ratio of dense-reference to event-driven
// idle tick cost. Unlike the cross-snapshot host gates, this compares two
// benches recorded in the same run on the same machine, so wall-clock is
// meaningful: the event engine fast-forwards an idle mesh in O(1) while the
// dense scan pays the full topology walk, a gap that is orders of magnitude
// in practice. Dropping under 10x means the fast-forward stopped engaging.
const idleSpeedupFloor = 10.0

// gateIdleSpeedup holds the new snapshot's idle fast-forward speedup to the
// floor. Snapshots recorded before schema 3 lack the benches and pass.
func gateIdleSpeedup(rep *Report, benches []BenchResult) {
	var idle, dense *BenchResult
	for i := range benches {
		switch benches[i].Name {
		case BenchTickIdle:
			idle = &benches[i]
		case BenchTickIdleDense:
			dense = &benches[i]
		}
	}
	if idle == nil || dense == nil {
		return
	}
	d := Delta{
		Scenario: "bench", Metric: "idle-fast-forward-speedup", Kind: "bench",
		Old: dense.NsPerOp, New: idle.NsPerOp,
	}
	if idle.NsPerOp <= 0 {
		d.Note = fmt.Sprintf("unmeasurable: %s recorded %.0f ns/op", BenchTickIdle, idle.NsPerOp)
		rep.fail(d)
		return
	}
	speedup := dense.NsPerOp / idle.NsPerOp
	if speedup < idleSpeedupFloor {
		d.Note = fmt.Sprintf("IDLE SPEEDUP %.1fx < %.0fx floor (dense %.0f ns/op, event %.0f ns/op)",
			speedup, idleSpeedupFloor, dense.NsPerOp, idle.NsPerOp)
		rep.fail(d)
		return
	}
	d.OK = true
	d.Note = fmt.Sprintf("idle fast-forward %.0fx over dense reference (floor %.0fx)", speedup, idleSpeedupFloor)
	rep.Deltas = append(rep.Deltas, d)
}

// shardSpeedupFloor is the minimum ratio of serial to 4-shard tick cost on
// the large-mesh scaling workload. Like the idle gate this compares two
// benches recorded in the same run on the same machine; unlike it, the
// ratio only means something when the shards actually ran concurrently, so
// the gate arms only for snapshots recorded at GOMAXPROCS >= 4. Smaller
// machines (and pre-schema-5 snapshots, which lack the stamp) get an
// informational row instead.
const (
	shardSpeedupFloor    = 2.0
	shardSpeedupMinProcs = 4
)

// gateShardSpeedup holds the new snapshot's sharded-engine speedup to the
// floor. Snapshots without the scaling benches pass untouched.
func gateShardSpeedup(rep *Report, snap *Snapshot) {
	var serial, sharded *BenchResult
	for i := range snap.Benches {
		switch snap.Benches[i].Name {
		case BenchTickLarge:
			serial = &snap.Benches[i]
		case BenchTickLargeShard4:
			sharded = &snap.Benches[i]
		}
	}
	if serial == nil || sharded == nil {
		return
	}
	d := Delta{
		Scenario: "bench", Metric: "sharded-tick-speedup", Kind: "bench",
		Old: serial.NsPerOp, New: sharded.NsPerOp,
	}
	if sharded.NsPerOp <= 0 {
		d.Note = fmt.Sprintf("unmeasurable: %s recorded %.0f ns/op", BenchTickLargeShard4, sharded.NsPerOp)
		rep.fail(d)
		return
	}
	speedup := serial.NsPerOp / sharded.NsPerOp
	if snap.MaxProcs < shardSpeedupMinProcs {
		d.OK = true
		d.Note = fmt.Sprintf("sharded tick %.2fx over serial — not gated: snapshot recorded at GOMAXPROCS=%d (< %d)",
			speedup, snap.MaxProcs, shardSpeedupMinProcs)
		rep.Deltas = append(rep.Deltas, d)
		return
	}
	if speedup < shardSpeedupFloor {
		d.Note = fmt.Sprintf("SHARD SPEEDUP %.2fx < %.1fx floor at GOMAXPROCS=%d (serial %.0f ns/op, 4-shard %.0f ns/op)",
			speedup, shardSpeedupFloor, snap.MaxProcs, serial.NsPerOp, sharded.NsPerOp)
		rep.fail(d)
		return
	}
	d.OK = true
	d.Note = fmt.Sprintf("sharded tick %.2fx over serial at GOMAXPROCS=%d (floor %.1fx)", speedup, snap.MaxProcs, shardSpeedupFloor)
	rep.Deltas = append(rep.Deltas, d)
}

// fail appends a failing delta and clears the verdict.
func (r *Report) fail(d Delta) {
	d.OK = false
	r.Deltas = append(r.Deltas, d)
	r.Pass = false
}

// compareSim gates every deterministic metric at exact equality.
func compareSim(rep *Report, o, n *ScenarioResult) {
	keys := make([]string, 0, len(o.Sim))
	for k := range o.Sim {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rep.SimChecked++
		ov := o.Sim[k]
		nv, ok := n.Sim[k]
		d := Delta{Scenario: o.Name, Metric: k, Kind: "sim", Old: float64(ov), New: float64(nv)}
		switch {
		case !ok:
			d.Note = "metric missing from new snapshot"
			rep.fail(d)
		case ov != nv:
			d.Frac = frac(float64(ov), float64(nv))
			d.Note = fmt.Sprintf("DRIFT %+.2f%% (sim metrics must match exactly)", 100*d.Frac)
			rep.fail(d)
		default:
			d.OK = true
			d.Note = "exact"
			rep.SimEqual++
			rep.Deltas = append(rep.Deltas, d)
		}
	}
	// New metrics are informational: the usual cause is a new snapshot
	// recorded by newer code, which the gate should not punish.
	for k := range n.Sim {
		if _, ok := o.Sim[k]; !ok {
			rep.Deltas = append(rep.Deltas, Delta{
				Scenario: o.Name, Metric: k, Kind: "sim",
				New: float64(n.Sim[k]), OK: true, Note: "new metric (not gated)",
			})
		}
	}
}

// compareHost gates the noisy host metrics statistically.
func compareHost(rep *Report, o, n *ScenarioResult, opt CompareOptions) {
	for _, m := range []struct {
		name     string
		old, new []float64
	}{
		{"wall_ns", o.Host.WallNS, n.Host.WallNS},
		{"allocs", o.Host.Allocs, n.Host.Allocs},
		{"alloc_bytes", o.Host.AllocBytes, n.Host.AllocBytes},
	} {
		if len(m.old) == 0 || len(m.new) == 0 {
			continue
		}
		oldMean, oldCI := MeanCI(m.old, opt.Confidence)
		newMean, newCI := MeanCI(m.new, opt.Confidence)
		_, _, p := WelchT(m.old, m.new)
		d := Delta{
			Scenario: o.Name, Metric: m.name, Kind: "host",
			Old: oldMean, New: newMean, OldCI: oldCI, NewCI: newCI,
			Frac: frac(oldMean, newMean), P: p,
		}
		testable := len(m.old) >= 2 && len(m.new) >= 2
		regressed := d.Frac > opt.HostThreshold
		switch {
		case regressed && (!testable || p < opt.Alpha):
			d.Note = fmt.Sprintf("REGRESSION %+.1f%% > +%.0f%% (p=%.3f)", 100*d.Frac, 100*opt.HostThreshold, p)
			rep.fail(d)
		case regressed:
			d.OK = true
			d.Note = fmt.Sprintf("~ %+.1f%% but not significant (p=%.3f)", 100*d.Frac, p)
			rep.Deltas = append(rep.Deltas, d)
		default:
			d.OK = true
			d.Note = fmt.Sprintf("~ %+.1f%% (p=%.3f)", 100*d.Frac, p)
			rep.Deltas = append(rep.Deltas, d)
		}
	}
}

// compareBenches gates the allocation benchmarks: allocs/op must not grow.
// Unlike the noisy host wall clock, allocs/op is deterministic for these
// steady-state loops, so the gate is exact — any increase fails, on any
// machine. Benchmarks absent from the old snapshot (recorded by an older
// schema) are informational only.
func compareBenches(rep *Report, oldB, newB []BenchResult) {
	newByName := make(map[string]BenchResult, len(newB))
	for _, b := range newB {
		newByName[b.Name] = b
	}
	for _, o := range oldB {
		n, ok := newByName[o.Name]
		d := Delta{Scenario: "bench", Metric: o.Name, Kind: "bench", Old: float64(o.AllocsPerOp)}
		if !ok {
			d.Note = "bench missing from new snapshot"
			rep.fail(d)
			continue
		}
		d.New = float64(n.AllocsPerOp)
		d.Frac = frac(d.Old, d.New)
		if n.AllocsPerOp > o.AllocsPerOp {
			d.Note = fmt.Sprintf("ALLOC REGRESSION %d -> %d allocs/op", o.AllocsPerOp, n.AllocsPerOp)
			rep.fail(d)
			continue
		}
		d.OK = true
		d.Note = fmt.Sprintf("%d allocs/op (old %d), %.0f ns/op (not gated)", n.AllocsPerOp, o.AllocsPerOp, n.NsPerOp)
		rep.Deltas = append(rep.Deltas, d)
	}
	oldNames := make(map[string]bool, len(oldB))
	for _, o := range oldB {
		oldNames[o.Name] = true
	}
	for _, n := range newB {
		if !oldNames[n.Name] {
			rep.Deltas = append(rep.Deltas, Delta{
				Scenario: "bench", Metric: n.Name, Kind: "bench",
				New: float64(n.AllocsPerOp), OK: true,
				Note: fmt.Sprintf("new bench (not gated): %d allocs/op, %.0f ns/op", n.AllocsPerOp, n.NsPerOp),
			})
		}
	}
}

// frac returns (new-old)/old, saturating when old is zero.
func frac(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 1
	}
	return (new - old) / old
}

// String renders the verdict table: every host row, every failing or
// informational sim row, and a per-scenario summary of the exact-equality
// checks (printing hundreds of identical sim rows would bury the signal).
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %-28s %14s %14s %10s  %s\n", "scenario", "metric", "old", "new", "delta", "verdict")
	simOK := make(map[string]int)
	for _, d := range r.Deltas {
		if d.Kind == "sim" && d.OK && d.Note == "exact" {
			simOK[d.Scenario]++
			continue
		}
		old, new := fmt.Sprintf("%.0f", d.Old), fmt.Sprintf("%.0f", d.New)
		if d.Kind == "host" {
			old = fmt.Sprintf("%.3g ±%.2g", d.Old, d.OldCI)
			new = fmt.Sprintf("%.3g ±%.2g", d.New, d.NewCI)
		}
		verdict := "ok"
		if !d.OK {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "%-26s %-28s %14s %14s %+9.2f%%  %s: %s\n",
			d.Scenario, d.Metric, old, new, 100*d.Frac, verdict, d.Note)
	}
	scenarios := make([]string, 0, len(simOK))
	for s := range simOK {
		scenarios = append(scenarios, s)
	}
	sort.Strings(scenarios)
	for _, s := range scenarios {
		fmt.Fprintf(&b, "%-26s %-28s %s\n", s, "(sim)", fmt.Sprintf("%d metrics exactly equal", simOK[s]))
	}
	fmt.Fprintf(&b, "sim: %d/%d metrics exactly equal\n", r.SimEqual, r.SimChecked)
	if r.Pass {
		b.WriteString("verdict: PASS\n")
	} else {
		b.WriteString("verdict: FAIL\n")
	}
	return b.String()
}
