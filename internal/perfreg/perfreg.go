// Package perfreg is the repository's performance-regression harness: it
// runs the canonical scenarios a fixed number of times, records both the
// deterministic simulation metrics (instruction-cost totals per role ×
// feature × category, scheduler rounds, packet counts) and the host-side
// metrics (wall-clock time, allocations), persists them as schema-versioned
// BENCH snapshots, and compares two snapshots into a pass/fail verdict —
// sim metrics gate at exact equality, host metrics at a statistical
// threshold (see compare.go).
//
// The paper measures *where the time goes*; perfreg makes sure it keeps
// going to the same places: any PR that drifts an instruction count fails
// the exact-equality gate, and any PR that slows the harness beyond the
// noise fails the host gate.
//
// Record must not run concurrently with other experiment runs (it installs
// the experiments package's global observer while collecting sim metrics).
// Within a Record call the timed repetitions of each scenario may fan
// across a worker pool (RecordConfig.Parallel); the observed sim-metric run
// always stays serial, and snapshots recorded at different worker counts
// gate their host metrics only against snapshots recorded at the same
// count, because parallel repetitions time scheduler contention along with
// the work.
package perfreg

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"msglayer/internal/cost"
	"msglayer/internal/experiments"
	"msglayer/internal/flitnet"
	"msglayer/internal/network"
	"msglayer/internal/obs"
	"msglayer/internal/obs/monitor"
	"msglayer/internal/obs/timeline"
	"msglayer/internal/parsweep"
	"msglayer/internal/report"
	"msglayer/internal/topology"
	"msglayer/internal/twin"
	"msglayer/internal/workload"
)

// SchemaVersion identifies the snapshot layout; bump on incompatible
// changes. Version 7 added the SLO alert digests (the canonical monitor
// rules replayed over each netload mode's recorded timeline, with the
// alert report's digest and incident count joining the exact-equality
// gate — any PR that shifts when an alert opens or closes fails the gate
// even if the totals agree) and the monitor-eval allocation benchmark.
// Version 6 added the analytic-twin calibration scenario (the
// per-regime MAPE and Pearson-r accuracy aggregates as permyriad sim keys,
// exact-equality gated like every other deterministic metric) and the
// twin-eval benchmark. Version 5 added the GOMAXPROCS stamp and the sharded-engine
// scaling benchmarks (the large-mesh tick serial and at four shards,
// recorded in the same run so the parallel speedup gates within one
// snapshot — and only on machines with enough processors to mean it).
// Version 4 added the timeline digests (per-scenario windowed
// metrics timelines hashed into sim keys, so any PR that shifts *when*
// events happen fails the exact-equality gate even if the totals agree)
// and the timeline-sample allocation benchmark. Version 3 added the
// event-driven engine benchmarks (idle fast-forward and sparse occupancy,
// with the dense-reference baseline recorded in the same run so the idle
// speedup gates within one snapshot). Version 2 added the parallelism
// stamp and the allocation benchmark section. Older snapshots still load:
// the new sections are simply absent, and absent sections are not gated.
const SchemaVersion = 7

// minSchemaVersion is the oldest snapshot layout this build still reads.
const minSchemaVersion = 1

// NetloadScenario names the flit-level sweep point recorded alongside the
// protocol scenarios.
const NetloadScenario = "netload-fattree-load100"

// TwinScenario names the analytic-twin calibration accuracy record: the
// per-regime MAPE and Pearson-r aggregates of the twin-vs-simulator sweep,
// stored as permyriad integers so the exact-equality gate applies.
const TwinScenario = "twin-calibration"

// Snapshot is one recorded BENCH_PR<k>.json document.
type Snapshot struct {
	Schema    int    `json:"schema"`
	Label     string `json:"label"`
	CreatedAt string `json:"created_at,omitempty"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Reps is the number of timed repetitions behind every host sample
	// vector.
	Reps int `json:"reps"`
	// Words is the transfer size the protocol scenarios ran with.
	Words int `json:"words"`
	// NetloadCycles is the measurement length of the flit-level point.
	NetloadCycles int `json:"netload_cycles"`
	// Parallel is the worker count the timed repetitions ran under; host
	// metrics only gate between snapshots recorded at the same count.
	// Absent (schema 1) means serial.
	Parallel int `json:"parallel,omitempty"`
	// MaxProcs is the GOMAXPROCS the snapshot was recorded under. The
	// sharded-engine speedup only gates when the recording machine had at
	// least four processors; on smaller machines the shards time-slice one
	// core and the ratio measures nothing. Absent (schema < 5) means
	// unknown.
	MaxProcs  int              `json:"max_procs,omitempty"`
	Scenarios []ScenarioResult `json:"scenarios"`
	// Benches holds the allocation benchmarks (schema 2); allocs/op gates
	// at no-regression.
	Benches []BenchResult `json:"benches,omitempty"`
}

// parallelism normalizes the recorded worker count; snapshots from before
// the field existed were recorded serially.
func (s *Snapshot) parallelism() int {
	if s.Parallel < 1 {
		return 1
	}
	return s.Parallel
}

// ScenarioResult is one scenario's recorded metrics.
type ScenarioResult struct {
	Name string `json:"name"`
	// Sim holds the deterministic simulation metrics; identical code and
	// inputs must reproduce them bit-for-bit.
	Sim map[string]uint64 `json:"sim"`
	// Host holds the per-repetition host-side samples; they vary run to
	// run and are compared statistically.
	Host HostSamples `json:"host"`
}

// HostSamples are per-repetition host measurements, one entry per rep.
type HostSamples struct {
	WallNS     []float64 `json:"wall_ns"`
	Allocs     []float64 `json:"allocs"`
	AllocBytes []float64 `json:"alloc_bytes"`
}

// RecordConfig parameterizes Record. Zero values select the defaults.
type RecordConfig struct {
	// Label names the snapshot (e.g. "PR2").
	Label string
	// Reps is the number of timed repetitions per scenario (default 5).
	Reps int
	// Words is the protocol transfer size (default 64).
	Words int
	// NetloadCycles is the flit-level measurement length (default 1000).
	NetloadCycles int
	// Parallel is the worker count for the timed repetitions (values below
	// 1 select GOMAXPROCS; 1 is the serial recording older snapshots used).
	Parallel int
	// SkipBenches omits the allocation benchmarks, which cost a couple of
	// wall-clock seconds per recording.
	SkipBenches bool
	// Timestamp, when non-empty, is stored as CreatedAt.
	Timestamp string
}

func (c *RecordConfig) defaults() {
	if c.Reps <= 0 {
		c.Reps = 5
	}
	if c.Words <= 0 {
		c.Words = 64
	}
	if c.NetloadCycles <= 0 {
		c.NetloadCycles = 1000
	}
}

// Record runs every canonical scenario and returns the populated snapshot.
// Each scenario runs once under an observability hub to collect the sim
// metrics, then Reps more times unobserved for the host timing samples; the
// instruction cells of every repetition are checked against the first run,
// so nondeterminism is caught at record time rather than at the gate.
func Record(cfg RecordConfig) (*Snapshot, error) {
	cfg.defaults()
	workers := parsweep.Workers(cfg.Parallel)
	snap := &Snapshot{
		Schema:        SchemaVersion,
		Label:         cfg.Label,
		CreatedAt:     cfg.Timestamp,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		Reps:          cfg.Reps,
		Words:         cfg.Words,
		NetloadCycles: cfg.NetloadCycles,
		Parallel:      workers,
		MaxProcs:      runtime.GOMAXPROCS(0),
	}
	for _, name := range experiments.CanonicalScenarios() {
		res, err := recordProtocolScenario(name, cfg.Words, cfg.Reps, workers)
		if err != nil {
			return nil, fmt.Errorf("perfreg: %s: %w", name, err)
		}
		snap.Scenarios = append(snap.Scenarios, *res)
	}
	res, err := recordNetloadScenario(cfg.NetloadCycles, cfg.Reps, workers)
	if err != nil {
		return nil, fmt.Errorf("perfreg: %s: %w", NetloadScenario, err)
	}
	snap.Scenarios = append(snap.Scenarios, *res)
	res, err = recordTwinScenario(workers)
	if err != nil {
		return nil, fmt.Errorf("perfreg: %s: %w", TwinScenario, err)
	}
	snap.Scenarios = append(snap.Scenarios, *res)
	if !cfg.SkipBenches {
		snap.Benches = recordBenches()
	}
	return snap, nil
}

// Timeline window widths for the recorded digests: scheduler rounds for
// the protocol scenarios, flit cycles for the netload point. Changing
// either changes every digest, which the exact-equality gate flags the
// same way a schema bump would.
const (
	protoTimelineInterval = 8
	netTimelineInterval   = 100
)

// recordProtocolScenario records one canonical protocol scenario.
func recordProtocolScenario(name string, words, reps, workers int) (*ScenarioResult, error) {
	// Observed run: sim metrics, excluded from timing. Always serial — it
	// mutates the experiments package's global observer. A timeline sampler
	// rides the hub's round clock so the snapshot pins not just the totals
	// but their distribution over simulated time.
	hub := obs.NewHub()
	sampler := timeline.New(hub.Metrics, timeline.Config{Interval: protoTimelineInterval})
	hub.SetTickListener(sampler.Advance)
	experiments.SetObserver(hub)
	cells, err := experiments.RunCanonical(name, words)
	experiments.SetObserver(nil)
	if err != nil {
		return nil, err
	}
	// The single-packet scenario never enters the observed run loop, so the
	// hub's round clock stays at zero; flushing at round 1 puts its whole
	// run in one partial window instead of losing it.
	end := hub.Round()
	if end == 0 {
		end = 1
	}
	sampler.Flush(end)
	if err := sampler.Reconcile(); err != nil {
		return nil, err
	}
	sim := simFromCells(cells)
	sim["rounds"] = hub.Metrics.CounterValue(obs.Key{Name: "run_rounds_total", Node: -1})
	for _, node := range []int{0, 1} {
		sim["packets/sent"] += hub.Metrics.CounterValue(obs.Key{Name: "packets_sent_total", Node: node, Proto: "cmam"})
		sim["packets/received"] += hub.Metrics.CounterValue(obs.Key{Name: "packets_received_total", Node: node, Proto: "cmam"})
	}
	tl := sampler.Snapshot()
	sim["timeline/digest"] = tl.DigestValue
	sim["timeline/windows"] = uint64(len(tl.Windows))

	res := &ScenarioResult{Name: name, Sim: sim}
	err = timedReps(&res.Host, reps, workers, func(rep int) error {
		again, err := experiments.RunCanonical(name, words)
		if err != nil {
			return err
		}
		if !cellsEqual(cells, again) {
			return fmt.Errorf("rep %d produced different instruction cells — scenario is nondeterministic", rep+1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// timedReps collects reps wall-clock and allocation samples of fn. Serially
// every repetition measures its own runtime.MemStats delta, exactly like
// the loop this generalizes. With workers > 1 the repetitions fan across a
// pool: wall clock stays per-repetition (and includes scheduler
// contention), but MemStats is process-global, so the allocation samples
// become the whole fan's delta averaged per repetition — the mean the gate
// compares is unchanged; only the per-rep variance is lost.
func timedReps(host *HostSamples, reps, workers int, fn func(rep int) error) error {
	if workers <= 1 {
		for rep := 0; rep < reps; rep++ {
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			if err := fn(rep); err != nil {
				return err
			}
			wall := time.Since(start)
			runtime.ReadMemStats(&after)
			host.WallNS = append(host.WallNS, float64(wall.Nanoseconds()))
			host.Allocs = append(host.Allocs, float64(after.Mallocs-before.Mallocs))
			host.AllocBytes = append(host.AllocBytes, float64(after.TotalAlloc-before.TotalAlloc))
		}
		return nil
	}
	wall := make([]float64, reps)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	err := parsweep.Run(workers, reps, func(rep int) error {
		start := time.Now()
		if err := fn(rep); err != nil {
			return err
		}
		wall[rep] = float64(time.Since(start).Nanoseconds())
		return nil
	})
	runtime.ReadMemStats(&after)
	if err != nil {
		return err
	}
	allocs := float64(after.Mallocs-before.Mallocs) / float64(reps)
	bytes := float64(after.TotalAlloc-before.TotalAlloc) / float64(reps)
	for rep := 0; rep < reps; rep++ {
		host.WallNS = append(host.WallNS, wall[rep])
		host.Allocs = append(host.Allocs, allocs)
		host.AllocBytes = append(host.AllocBytes, bytes)
	}
	return nil
}

// simFromCells flattens a role × feature × category breakdown into the
// snapshot's flat metric map.
func simFromCells(cells report.Cells) map[string]uint64 {
	sim := make(map[string]uint64)
	var total uint64
	for _, r := range cost.Roles() {
		for _, f := range cost.Features() {
			v := cells[r][f]
			prefix := "instr/" + roleSlug(r) + "/" + featureSlug(f) + "/"
			sim[prefix+"reg"] = v.Reg
			sim[prefix+"mem"] = v.Mem
			sim[prefix+"dev"] = v.Dev
			total += v.Total()
		}
	}
	sim["instr/total"] = total
	return sim
}

// cellsEqual compares two breakdowns cell by cell.
func cellsEqual(a, b report.Cells) bool {
	for _, r := range cost.Roles() {
		for _, f := range cost.Features() {
			if a[r][f] != b[r][f] {
				return false
			}
		}
	}
	return true
}

// roleSlug is the snapshot key fragment for a role.
func roleSlug(r cost.Role) string {
	if r == cost.Source {
		return "src"
	}
	return "dst"
}

// featureSlug is the snapshot key fragment for a feature.
func featureSlug(f cost.Feature) string {
	switch f {
	case cost.Base:
		return "base"
	case cost.BufferMgmt:
		return "buffer"
	case cost.InOrder:
		return "inorder"
	default:
		return "fault"
	}
}

// recordNetloadScenario records the flit-level sweep point: a 4-ary 2-level
// fat tree under uniform traffic at offered load 0.1, for all three routing
// modes. The flit simulator is seeded, so its stats are deterministic.
func recordNetloadScenario(cycles, reps, workers int) (*ScenarioResult, error) {
	stats, err := runNetloadPoint(cycles, false)
	if err != nil {
		return nil, err
	}
	// Observed pass: the same point under a hub with a timeline sampler on
	// the cycle clock. Observation must not change the flit stats, and the
	// per-mode timeline digests join the exact-equality gate. The timed
	// repetitions below stay unobserved so the host samples keep measuring
	// the bare simulator.
	observed, err := runNetloadPoint(cycles, true)
	if err != nil {
		return nil, err
	}
	for k, v := range stats {
		if observed[k] != v {
			return nil, fmt.Errorf("observation drifted %s: %d observed, %d bare", k, observed[k], v)
		}
	}
	res := &ScenarioResult{Name: NetloadScenario, Sim: observed}
	err = timedReps(&res.Host, reps, workers, func(rep int) error {
		again, err := runNetloadPoint(cycles, false)
		if err != nil {
			return err
		}
		if !mapsEqual(stats, again) {
			return fmt.Errorf("rep %d produced different flit stats — sweep point is nondeterministic", rep+1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// recordTwinScenario runs the analytic twin's full calibration sweep and
// flattens the accuracy aggregates into sim keys. The sweep is
// deterministic, so the permyriad MAPE and Pearson values gate under exact
// equality; record itself refuses a sweep that misses the accuracy floors.
// The twin's evaluation is closed form, so there is no meaningful host
// timing to sample — Host stays empty, and empty sample sets are skipped
// by the statistical gate.
func recordTwinScenario(workers int) (*ScenarioResult, error) {
	rep, err := twin.Calibrate(twin.Options{Parallel: workers})
	if err != nil {
		return nil, err
	}
	if err := rep.Check(twin.DefaultThresholds()); err != nil {
		return nil, err
	}
	pm := func(v int64) uint64 {
		if v < 0 {
			return 0
		}
		return uint64(v)
	}
	sim := map[string]uint64{
		"twin_net_points":   uint64(len(rep.Net)),
		"twin_proto_points": uint64(len(rep.Proto)),
	}
	for _, ra := range rep.NetAccuracy {
		for _, m := range ra.Metrics {
			sim[fmt.Sprintf("twin_mape_pm|%s|%s", ra.Regime, m.Metric)] = pm(m.MAPEPm)
			sim[fmt.Sprintf("twin_pearson_pm|%s|%s", ra.Regime, m.Metric)] = pm(m.PearsonPm)
		}
	}
	for _, m := range rep.ProtoAccuracy {
		sim["twin_mape_pm|protocol|"+m.Metric] = pm(m.MAPEPm)
		sim["twin_pearson_pm|protocol|"+m.Metric] = pm(m.PearsonPm)
	}
	return &ScenarioResult{Name: TwinScenario, Sim: sim}, nil
}

// netloadLoad and netloadSeed pin the recorded sweep point.
const (
	netloadLoad = 0.1
	netloadSeed = 1
)

// runNetloadPoint runs the pinned sweep point once per routing mode and
// returns the flattened deterministic stats. With observe set, each mode
// additionally runs under a hub whose timeline sampler rides the cycle
// listener, and the reconciled timeline's digest and window count join the
// returned map.
func runNetloadPoint(cycles int, observe bool) (map[string]uint64, error) {
	pattern, err := workload.ByName("uniform")
	if err != nil {
		return nil, err
	}
	out := make(map[string]uint64)
	for _, mode := range []flitnet.Mode{flitnet.Deterministic, flitnet.Adaptive, flitnet.CR} {
		topo, err := topology.NewFatTree(4, 2)
		if err != nil {
			return nil, err
		}
		net, err := flitnet.New(flitnet.Config{
			Topology:        topo,
			Mode:            mode,
			BufferFlits:     3,
			InjectQueue:     8,
			VirtualChannels: 1,
		})
		if err != nil {
			return nil, err
		}
		var sampler *timeline.Sampler
		if observe {
			hub := obs.NewHub()
			net.SetFlitObserver(hub.FlitScope())
			sampler = timeline.New(hub.Metrics, timeline.Config{Interval: netTimelineInterval})
			net.SetCycleListener(sampler.Advance)
		}
		nodes := net.Nodes()
		gen, err := workload.NewGenerator(pattern, nodes, netloadLoad, netloadSeed)
		if err != nil {
			return nil, err
		}
		for c := 0; c < cycles; c++ {
			for _, a := range gen.Cycle() {
				// Refused injections are part of the measurement.
				_ = net.Inject(network.Packet{
					Src: a.Src, Dst: a.Dst,
					Data: []network.Word{network.Word(c)},
				})
			}
			net.Tick(1)
		}
		net.TickUntilQuiet(200000)
		for node := 0; node < nodes; node++ {
			for {
				if _, ok := net.TryRecv(node); !ok {
					break
				}
			}
		}
		st := net.FlitStats()
		prefix := "net/" + mode.String() + "/"
		if sampler != nil {
			sampler.Flush(net.Cycle())
			if err := sampler.Reconcile(); err != nil {
				return nil, fmt.Errorf("%s: %w", mode, err)
			}
			tl := sampler.Snapshot()
			out[prefix+"timeline_digest"] = tl.DigestValue
			out[prefix+"timeline_windows"] = uint64(len(tl.Windows))
			// The canonical SLO rules replay over the same timeline; the
			// alert report digest pins when every alert opens and closes.
			// Blame is not wired here (it lives above perfreg in the import
			// graph) — the report digest excludes blame, so these digests
			// match reports produced with blame attached.
			mon, err := monitor.New(monitor.CanonicalRules())
			if err != nil {
				return nil, err
			}
			if err := mon.Replay(tl); err != nil {
				return nil, fmt.Errorf("%s: %w", mode, err)
			}
			rep := mon.Snapshot("")
			out[prefix+"alert_digest"] = rep.DigestValue
			out[prefix+"alert_incidents"] = uint64(len(rep.Incidents))
		}
		out[prefix+"injected"] = st.Injected
		out[prefix+"delivered"] = st.Delivered
		out[prefix+"backpressure"] = st.Backpressure
		out[prefix+"kills"] = st.Kills
		out[prefix+"retries"] = st.Retries
		out[prefix+"flit_moves"] = st.FlitMoves
		out[prefix+"failed_worms"] = st.FailedWorms
		out[prefix+"cycles"] = st.Cycles
		out[prefix+"latency_sum"] = st.LatencySum
		out[prefix+"latency_count"] = st.LatencyCount
		out[prefix+"latency_max"] = st.LatencyMax
	}
	return out, nil
}

// mapsEqual compares two flat metric maps.
func mapsEqual(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// WriteFile persists the snapshot as indented JSON.
func (s *Snapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a snapshot, rejecting unknown schema versions.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("perfreg: %s: %w", path, err)
	}
	return s, nil
}

// Parse decodes a snapshot from raw JSON, rejecting unknown schema
// versions.
func Parse(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	if s.Schema < minSchemaVersion || s.Schema > SchemaVersion {
		return nil, fmt.Errorf("schema %d, this build reads %d through %d",
			s.Schema, minSchemaVersion, SchemaVersion)
	}
	return &s, nil
}
