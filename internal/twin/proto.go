package twin

import (
	"fmt"

	"msglayer/internal/analytic"
	"msglayer/internal/cost"
)

// ProtoPoint is one canonical protocol scenario to predict: the same
// (scenario, words) inputs experiments.RunCanonical simulates.
type ProtoPoint struct {
	// Scenario is a canonical scenario name: single, cm5-finite,
	// cm5-stream, cr-finite, or cr-stream.
	Scenario string
	// Words is the transfer size; ignored by "single".
	Words int
}

// ProtoPrediction is the twin's instruction-count estimate for a protocol
// scenario. Unlike the network side this is exact, not fitted: the
// analytic model charges the same schedule the simulator executes.
type ProtoPrediction struct {
	// Total is the end-to-end instruction count (all roles, features, and
	// categories).
	Total uint64 `json:"total_instr"`
	// Overhead is the non-base fraction of Total (Figure 8's y-axis).
	Overhead float64 `json:"overhead"`
	// Packets is the hardware packet count of the transfer.
	Packets int `json:"packets"`
	// Breakdown is the full role × feature cost table.
	Breakdown analytic.Breakdown `json:"-"`
}

// protoPacketWords is the hardware packet payload of the canonical
// scenarios (the paper's calibration).
const protoPacketWords = 4

// PredictProto evaluates the analytic model under the canonical scenario's
// exact conditions: 4-word hardware packets, half the packets out of order
// on the reordering stream substrate, acknowledgement group 1.
func (pt ProtoPoint) PredictProto() (ProtoPrediction, error) {
	s, err := cost.NewPaperSchedule(protoPacketWords)
	if err != nil {
		return ProtoPrediction{}, err
	}
	if pt.Scenario == "single" {
		b := analytic.SingleCMAM(s)
		return ProtoPrediction{
			Total:     b.Total().Total(),
			Overhead:  b.Overhead(),
			Packets:   1,
			Breakdown: b,
		}, nil
	}
	var proto analytic.Protocol
	ooo := 0
	switch pt.Scenario {
	case "cm5-finite":
		proto = analytic.ProtoFiniteCMAM
	case "cm5-stream":
		// The stream substrate pair-swaps deliveries: half the packets
		// (rounded down) arrive out of order, the paper's Table 2 case.
		proto = analytic.ProtoIndefiniteCMAM
		ooo = analytic.HalfOutOfOrder(s, pt.Words)
	case "cr-finite":
		proto = analytic.ProtoFiniteCR
	case "cr-stream":
		proto = analytic.ProtoIndefiniteCR
	default:
		return ProtoPrediction{}, fmt.Errorf("twin: unknown scenario %q", pt.Scenario)
	}
	b, err := analytic.Evaluate(proto, s, analytic.Params{
		MessageWords: pt.Words,
		OutOfOrder:   ooo,
		AckGroup:     1,
	})
	if err != nil {
		return ProtoPrediction{}, err
	}
	return ProtoPrediction{
		Total:     b.Total().Total(),
		Overhead:  b.Overhead(),
		Packets:   analytic.Packets(s, pt.Words),
		Breakdown: b,
	}, nil
}
