package twin

import (
	"testing"

	"msglayer/internal/experiments"
	"msglayer/internal/flitnet"
)

// TestKnotExactness: the interpolant must reproduce the committed tables at
// the knot loads exactly — the twin is anchored to measurement there.
func TestKnotExactness(t *testing.T) {
	for _, c := range calibratedRegimes {
		for ki, load := range calKnotLoads {
			p, err := (NetPoint{Regime: c.Regime, Load: load, Cycles: CalCycles}).PredictNet()
			if err != nil {
				t.Fatalf("%s load %g: %v", c.Regime, load, err)
			}
			if !p.Calibrated {
				t.Fatalf("%s load %g: not calibrated", c.Regime, load)
			}
			if p.MeanLatency != c.Lat[ki] {
				t.Errorf("%s load %g: lat %v, table %v", c.Regime, load, p.MeanLatency, c.Lat[ki])
			}
			if p.Throughput != c.Thru[ki]*1000 {
				t.Errorf("%s load %g: thru %v, table %v", c.Regime, load, p.Throughput, c.Thru[ki]*1000)
			}
			nodes, _ := c.Regime.Nodes()
			if want := round(c.Moves[ki] * float64(nodes) * float64(CalCycles)); p.FlitMoves != want {
				t.Errorf("%s load %g: moves %d, want %d", c.Regime, load, p.FlitMoves, want)
			}
		}
	}
}

// TestLatencyMonotone: the committed latency curves rise with load, and
// PCHIP must preserve that between knots — no oscillation at the knee.
func TestLatencyMonotone(t *testing.T) {
	for _, r := range CalibratedRegimes() {
		prev := 0.0
		for load := 0.01; load <= 0.35; load += 0.005 {
			p, err := (NetPoint{Regime: r, Load: load, Cycles: CalCycles}).PredictNet()
			if err != nil {
				t.Fatalf("%s load %g: %v", r, load, err)
			}
			if p.MeanLatency < prev {
				t.Errorf("%s: latency dropped to %v at load %g (was %v)", r, p.MeanLatency, load, prev)
			}
			if p.Contention < 1 {
				t.Errorf("%s load %g: contention factor %v < 1", r, load, p.Contention)
			}
			prev = p.MeanLatency
		}
	}
}

// TestStructuralFallback: an uncommitted shape predicts via the same-mode
// donor, scaled by path length, and is flagged uncalibrated.
func TestStructuralFallback(t *testing.T) {
	small, err := (NetPoint{Regime: Regime{Topology: "mesh", A: 4, B: 4, Mode: flitnet.Deterministic, VCs: 1}, Load: 0.1, Cycles: CalCycles}).PredictNet()
	if err != nil {
		t.Fatal(err)
	}
	big, err := (NetPoint{Regime: Regime{Topology: "mesh", A: 8, B: 8, Mode: flitnet.Deterministic, VCs: 1}, Load: 0.1, Cycles: CalCycles}).PredictNet()
	if err != nil {
		t.Fatal(err)
	}
	if !small.Calibrated || big.Calibrated {
		t.Fatalf("calibrated flags: small %v, big %v", small.Calibrated, big.Calibrated)
	}
	if big.MeanLatency <= small.MeanLatency {
		t.Errorf("8x8 mesh latency %v not above 4x4's %v", big.MeanLatency, small.MeanLatency)
	}
	if big.MeanLinks <= small.MeanLinks {
		t.Errorf("8x8 mean links %v not above 4x4's %v", big.MeanLinks, small.MeanLinks)
	}
}

// TestPredictNetErrors: invalid points fail loudly, not with silent junk.
func TestPredictNetErrors(t *testing.T) {
	ok := Regime{Topology: "mesh", A: 4, B: 4, Mode: flitnet.Deterministic, VCs: 1}
	cases := []struct {
		name string
		pt   NetPoint
	}{
		{"zero load", NetPoint{Regime: ok, Load: 0, Cycles: 100}},
		{"overload", NetPoint{Regime: ok, Load: 1.5, Cycles: 100}},
		{"no cycles", NetPoint{Regime: ok, Load: 0.1, Cycles: 0}},
		{"bad topology", NetPoint{Regime: Regime{Topology: "torus", A: 4, B: 4}, Load: 0.1, Cycles: 100}},
		{"bad mode", NetPoint{Regime: Regime{Topology: "mesh", A: 4, B: 4, Mode: flitnet.Mode(99), VCs: 1}, Load: 0.1, Cycles: 100}},
	}
	for _, c := range cases {
		if _, err := c.pt.PredictNet(); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

// TestMeanLinksStructure: closed-form path lengths match hand-computed
// values for the calibrated shapes.
func TestMeanLinksStructure(t *testing.T) {
	mesh := Regime{Topology: "mesh", A: 4, B: 4}
	got, err := mesh.MeanLinks()
	if err != nil {
		t.Fatal(err)
	}
	// E|dx| = E|dy| = (16-1)/12 = 1.25; conditioned on dst != src:
	// 2.5 * 16/15 + 2 = 14/3.
	if want := 2.5*16/15 + 2; !close(got, want) {
		t.Errorf("mesh(4,4) mean links %v, want %v", got, want)
	}
	ft := Regime{Topology: "fattree", A: 4, B: 2}
	got, err = ft.MeanLinks()
	if err != nil {
		t.Fatal(err)
	}
	// 3/15 of peers share a leaf router (1 router), 12/15 need the root
	// (3 routers): (3*1 + 12*3)/15 + 1 = 3.6.
	if want := 39.0/15 + 1; !close(got, want) {
		t.Errorf("fattree(4,2) mean links %v, want %v", got, want)
	}
}

// TestWormFlits: CR pads short payloads to the hardware packet.
func TestWormFlits(t *testing.T) {
	det := Regime{Mode: flitnet.Deterministic}
	cr := Regime{Mode: flitnet.CR}
	if got := det.WormFlits(1, 4); got != 3 {
		t.Errorf("det 1-word worm: %d flits, want 3", got)
	}
	if got := cr.WormFlits(1, 4); got != 6 {
		t.Errorf("cr 1-word worm: %d flits, want 6", got)
	}
	if got := cr.WormFlits(8, 4); got != 10 {
		t.Errorf("cr 8-word worm: %d flits, want 10", got)
	}
}

// TestPredictProtoExact: the protocol twin must reproduce the simulator's
// instruction totals bit for bit on every canonical scenario — this is the
// exactness claim the package documentation makes.
func TestPredictProtoExact(t *testing.T) {
	for _, pt := range protoPoints() {
		cells, err := experiments.RunCanonical(pt.Scenario, pt.Words)
		if err != nil {
			t.Fatalf("%s words %d: %v", pt.Scenario, pt.Words, err)
		}
		pred, err := pt.PredictProto()
		if err != nil {
			t.Fatalf("%s words %d: %v", pt.Scenario, pt.Words, err)
		}
		if got := cellsTotal(cells); pred.Total != got {
			t.Errorf("%s words %d: twin %d instr, simulator %d", pt.Scenario, pt.Words, pred.Total, got)
		}
	}
}

// TestPredictProtoErrors: unknown scenarios fail loudly.
func TestPredictProtoErrors(t *testing.T) {
	if _, err := (ProtoPoint{Scenario: "warp", Words: 16}).PredictProto(); err == nil {
		t.Error("unknown scenario: no error")
	}
}

// TestPredictNetZeroAlloc: O(1) evaluation means zero heap traffic — this
// is what makes the 10^4x speedup hold at sweep scale.
func TestPredictNetZeroAlloc(t *testing.T) {
	pt := NetPoint{Regime: CalibratedRegimes()[0], Load: 0.123, Cycles: CalCycles}
	allocs := testing.AllocsPerRun(200, func() {
		p, err := pt.PredictNet()
		if err != nil {
			t.Fatal(err)
		}
		sinkPrediction = p
	})
	if allocs != 0 {
		t.Errorf("PredictNet allocates %v objects per call, want 0", allocs)
	}
}

// BenchmarkTwinEval is the gated evaluation benchmark: one closed-form
// prediction per op, zero allocs (checked in CI's -benchmem step).
func BenchmarkTwinEval(b *testing.B) {
	pt := NetPoint{Regime: CalibratedRegimes()[0], Load: 0.123, Cycles: CalCycles}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := pt.PredictNet()
		if err != nil {
			b.Fatal(err)
		}
		sinkPrediction = p
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
