package twin

import (
	"fmt"
	"testing"
)

// Speedup is one measured twin-vs-simulator timing comparison at a single
// grid point: how long the simulator takes to produce the numbers the twin
// predicts in closed form.
type Speedup struct {
	// Point names the operating point both sides evaluated.
	Point string `json:"point"`
	// SimNsPerOp and TwinNsPerOp are the measured per-evaluation times.
	SimNsPerOp  float64 `json:"sim_ns_per_op"`
	TwinNsPerOp float64 `json:"twin_ns_per_op"`
	// Factor is SimNsPerOp / TwinNsPerOp.
	Factor float64 `json:"factor"`
}

// speedupSinks keep the benchmarked work observable so the compiler cannot
// elide either side of the comparison.
var (
	sinkSample     netSample
	sinkPrediction NetPrediction
)

// MeasureSpeedup times the twin against the simulator on the first
// committed regime at load 0.1 (the middle of the calibrated range) using
// testing.Benchmark on both sides. The factor is wall-clock and therefore
// not deterministic; it belongs in logs and EXPERIMENTS.md, never in the
// byte-compared calibration report.
func MeasureSpeedup(opt Options) (Speedup, error) {
	regimes := CalibratedRegimes()
	if len(regimes) == 0 {
		return Speedup{}, fmt.Errorf("twin: no calibrated regimes")
	}
	r := regimes[0]
	pt := NetPoint{Regime: r, Load: 0.1, Cycles: CalCycles}
	// Fail fast on either side before paying for a benchmark.
	if _, err := pt.PredictNet(); err != nil {
		return Speedup{}, err
	}
	if _, err := simulateNet(r, pt.Load, opt, 1); err != nil {
		return Speedup{}, err
	}
	sim := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := simulateNet(r, pt.Load, opt, 1)
			if err != nil {
				b.Fatal(err)
			}
			sinkSample = s
		}
	})
	tw := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := pt.PredictNet()
			if err != nil {
				b.Fatal(err)
			}
			sinkPrediction = p
		}
	})
	simNs := float64(sim.NsPerOp())
	twinNs := float64(tw.T) / float64(tw.N)
	if twinNs <= 0 {
		twinNs = 1
	}
	return Speedup{
		Point:       fmt.Sprintf("%s load 0.1 cycles %d", r, CalCycles),
		SimNsPerOp:  simNs,
		TwinNsPerOp: twinNs,
		Factor:      simNs / twinNs,
	}, nil
}
