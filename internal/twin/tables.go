package twin

import "msglayer/internal/flitnet"

// Committed calibration tables: the simulator's measured behaviour at the
// knot loads (calKnotLoads), per regime, on the canonical calibration
// configuration — 800 measurement cycles, seed 1, uniform traffic, 1-word
// payloads, BufferFlits 3, InjectQueue 8. Regenerate with `twin -fit`
// (which runs the simulations and prints this table) whenever the engine's
// behaviour legitimately changes; the calibration gate fails on any
// unacknowledged drift.
var calibratedRegimes = []calibratedRegime{
	{
		Regime: Regime{Topology: "fattree", A: 4, B: 2, Mode: flitnet.Deterministic, VCs: 1},
		Lat:    [CalKnots]float64{5.734939759036145, 6.026016260162602, 7.149921507064364, 9.44291754756871, 17.83835051546392, 29.757795503988397},
		Thru:   [CalKnots]float64{0.019453125, 0.048046875, 0.09953125, 0.1478125, 0.189453125, 0.21546875},
		Moves:  [CalKnots]float64{0.151640625, 0.369140625, 0.77296875, 1.13859375, 1.471171875, 1.6734375},
		Drain:  [CalKnots]float64{4, 4, 11, 12, 36, 44},
	},
	{
		Regime: Regime{Topology: "fattree", A: 4, B: 2, Mode: flitnet.Adaptive, VCs: 1},
		Lat:    [CalKnots]float64{5.714859437751004, 5.959349593495935, 6.860282574568289, 8.707342842049657, 17.036475409836065, 30.667937476172323},
		Thru:   [CalKnots]float64{0.019453125, 0.048046875, 0.09953125, 0.147890625, 0.190625, 0.204921875},
		Moves:  [CalKnots]float64{0.151640625, 0.369140625, 0.77296875, 1.139296875, 1.47984375, 1.586953125},
		Drain:  [CalKnots]float64{4, 4, 9, 12, 25, 39},
	},
	{
		Regime: Regime{Topology: "fattree", A: 4, B: 2, Mode: flitnet.CR, VCs: 1},
		Lat:    [CalKnots]float64{7.594377510040161, 8.80650406504065, 17.7758346581876, 40.51140684410647, 52.29369369369369, 56.693548387096776},
		Thru:   [CalKnots]float64{0.019453125, 0.048046875, 0.09828125, 0.12328125, 0.130078125, 0.135625},
		Moves:  [CalKnots]float64{0.244921875, 0.594140625, 1.23046875, 1.52953125, 1.636171875, 1.69125},
		Drain:  [CalKnots]float64{8, 15, 32, 65, 81, 82},
	},
	{
		Regime: Regime{Topology: "mesh", A: 4, B: 4, Mode: flitnet.Deterministic, VCs: 1},
		Lat:    [CalKnots]float64{6.795180722891566, 7.147967479674797, 8.470957613814758, 12.57498675145734, 23.31847684984855, 34.6520338300443},
		Thru:   [CalKnots]float64{0.019453125, 0.048046875, 0.09953125, 0.147421875, 0.180546875, 0.193984375},
		Moves:  [CalKnots]float64{0.211171875, 0.523828125, 1.08515625, 1.6021875, 1.97578125, 2.0840625},
		Drain:  [CalKnots]float64{5, 6, 15, 14, 49, 46},
	},
	{
		Regime: Regime{Topology: "mesh", A: 4, B: 4, Mode: flitnet.Adaptive, VCs: 2},
		Lat:    [CalKnots]float64{6.85140562248996, 7.2682926829268295, 8.497645211930926, 10.37189646064448, 14.436220472440946, 26.09114927344782},
		Thru:   [CalKnots]float64{0.019453125, 0.048046875, 0.09953125, 0.147890625, 0.1984375, 0.2365625},
		Moves:  [CalKnots]float64{0.211171875, 0.523828125, 1.08515625, 1.607109375, 2.18015625, 2.573671875},
		Drain:  [CalKnots]float64{5, 6, 11, 13, 25, 61},
	},
	{
		Regime: Regime{Topology: "mesh", A: 4, B: 4, Mode: flitnet.CR, VCs: 1},
		Lat:    [CalKnots]float64{10.14859437751004, 13.445528455284553, 42.065963060686016, 70.74652493867539, 77.19032258064516, 83.59286293592864},
		Thru:   [CalKnots]float64{0.019453125, 0.048046875, 0.088828125, 0.095546875, 0.096875, 0.096328125},
		Moves:  [CalKnots]float64{0.424765625, 1.055078125, 1.917578125, 2.035, 2.11390625, 2.081640625},
		Drain:  [CalKnots]float64{12, 22, 95, 107, 104, 144},
	},
}
