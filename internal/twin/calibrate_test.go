package twin

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// calOnce shares one serial calibration run across the tests that only
// inspect the report; determinism tests run their own sweeps.
var (
	calOnce sync.Once
	calRep  *Report
	calErr  error
)

func calibrated(t *testing.T) *Report {
	t.Helper()
	calOnce.Do(func() { calRep, calErr = Calibrate(Options{Parallel: 1}) })
	if calErr != nil {
		t.Fatalf("calibrate: %v", calErr)
	}
	return calRep
}

// TestCalibrateMeetsThresholds: the committed grid must clear the gated
// accuracy floors — MAPE <= 5% and Pearson r >= 0.99 everywhere.
func TestCalibrateMeetsThresholds(t *testing.T) {
	rep := calibrated(t)
	if err := rep.Check(DefaultThresholds()); err != nil {
		t.Fatal(err)
	}
}

// TestCalibrateKnotRowsExact: at knot loads the twin is anchored to the
// committed tables, so fresh measurement must agree to 0.00% — any error
// there is engine drift, not model error.
func TestCalibrateKnotRowsExact(t *testing.T) {
	rep := calibrated(t)
	knots, holdouts := 0, 0
	for _, row := range rep.Net {
		if !row.Knot {
			holdouts++
			continue
		}
		knots++
		if row.LatErrPm != 0 || row.ThruErrPm != 0 || row.MvErrPm != 0 {
			t.Errorf("%s load %d: knot row has error lat=%d thru=%d mv=%d permyriad",
				row.Regime, row.LoadPermille, row.LatErrPm, row.ThruErrPm, row.MvErrPm)
		}
	}
	if want := len(CalibratedRegimes()) * CalKnots; knots != want {
		t.Errorf("%d knot rows, want %d", knots, want)
	}
	if want := len(CalibratedRegimes()) * len(calHoldoutLoads); holdouts != want {
		t.Errorf("%d holdout rows, want %d", holdouts, want)
	}
}

// TestCalibrateProtoExact: the protocol side of the report carries zero
// error on every row.
func TestCalibrateProtoExact(t *testing.T) {
	rep := calibrated(t)
	for _, row := range rep.Proto {
		if row.ErrPm != 0 {
			t.Errorf("%s words %d: err %d permyriad, want 0", row.Scenario, row.Words, row.ErrPm)
		}
	}
	for _, m := range rep.ProtoAccuracy {
		if m.MAPEPm != 0 || m.PearsonPm != 10000 {
			t.Errorf("proto %s: MAPE %d, r %d — want exact", m.Metric, m.MAPEPm, m.PearsonPm)
		}
	}
}

// TestCalibrateDeterministic: the report must be byte-identical across
// worker counts, shard counts, and engines — the property CI diffs.
func TestCalibrateDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("three full calibration sweeps")
	}
	base := render(t, calibrated(t))
	for _, opt := range []Options{
		{Parallel: 4, Shards: 2},
		{Parallel: 2, Dense: true},
	} {
		rep, err := Calibrate(opt)
		if err != nil {
			t.Fatalf("calibrate %+v: %v", opt, err)
		}
		if got := render(t, rep); got != base {
			t.Errorf("report with %+v differs from serial baseline", opt)
		}
	}
}

func render(t *testing.T, rep *Report) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestCompareSelfAndDrift: a report matches itself; any mutation is named.
func TestCompareSelfAndDrift(t *testing.T) {
	rep := calibrated(t)
	if bad := Compare(rep, rep); len(bad) != 0 {
		t.Fatalf("self-compare: %v", bad)
	}
	mutated := *rep
	mutated.Net = append([]NetRow(nil), rep.Net...)
	mutated.Net[3].MeasLat += 0.5
	if bad := Compare(rep, &mutated); len(bad) == 0 {
		t.Error("net drift not detected")
	}
	mutated = *rep
	mutated.NetAccuracy = append([]RegimeAccuracy(nil), rep.NetAccuracy...)
	ms := append([]MetricAccuracy(nil), rep.NetAccuracy[0].Metrics...)
	ms[0].MAPEPm += 100
	mutated.NetAccuracy[0].Metrics = ms
	if bad := Compare(rep, &mutated); len(bad) == 0 {
		t.Error("accuracy drift not detected")
	}
	mutated = *rep
	mutated.Cycles++
	if bad := Compare(rep, &mutated); len(bad) == 0 {
		t.Error("config drift not detected")
	}
}

// TestReportRoundTrip: JSON encode/decode preserves the report; wrong
// schemas are rejected.
func TestReportRoundTrip(t *testing.T) {
	rep := calibrated(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if bad := Compare(rep, back); len(bad) != 0 {
		t.Fatalf("round trip drifted: %v", bad)
	}
	if _, err := ParseReport([]byte(`{"schema": 99}`)); err == nil {
		t.Error("schema 99 accepted")
	}
	if _, err := ParseReport([]byte(`nope`)); err == nil {
		t.Error("garbage accepted")
	}
}

// TestWriters: the text and CSV renderings carry the full grid.
func TestWriters(t *testing.T) {
	rep := calibrated(t)
	var txt bytes.Buffer
	if err := WriteText(&txt, rep); err != nil {
		t.Fatal(err)
	}
	s := txt.String()
	for _, want := range []string{
		"fattree(4,2)/deterministic/vc1",
		"mesh(4,4)/cr/vc1",
		"per-regime accuracy",
		"protocol instruction totals",
		"PASS",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("text report missing %q", want)
		}
	}
	var csvBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, rep); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(csvBuf.String(), "\n")
	if want := 1 + len(rep.Net) + len(rep.Proto); lines != want {
		t.Errorf("CSV has %d lines, want %d", lines, want)
	}
}

// TestFitReproducesTables: regenerating the tables from fresh simulation
// must reproduce the committed source — the engine has not drifted.
func TestFitReproducesTables(t *testing.T) {
	src, err := Fit(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(src, "var calibratedRegimes = []calibratedRegime{") {
		t.Fatalf("unexpected header:\n%s", src)
	}
	for _, c := range calibratedRegimes {
		if !strings.Contains(src, c.Regime.Topology) {
			t.Errorf("fit output missing regime %s", c.Regime)
		}
	}
	// The literal float values must match the committed table exactly.
	for _, c := range calibratedRegimes {
		for ki := range calKnotLoads {
			for name, v := range map[string]float64{
				"Lat": c.Lat[ki], "Thru": c.Thru[ki], "Moves": c.Moves[ki], "Drain": c.Drain[ki],
			} {
				lit := formatKnot(v)
				if !strings.Contains(src, lit) {
					t.Errorf("%s %s knot %d: value %s absent from fit output", c.Regime, name, ki, lit)
				}
			}
		}
	}
}

// TestCalLoads: the grid is sorted and contains knots plus holdouts.
func TestCalLoads(t *testing.T) {
	loads := CalLoads()
	if len(loads) != CalKnots+len(calHoldoutLoads) {
		t.Fatalf("%d loads, want %d", len(loads), CalKnots+len(calHoldoutLoads))
	}
	for i := 1; i < len(loads); i++ {
		if loads[i] <= loads[i-1] {
			t.Errorf("loads not strictly ascending at %d: %v", i, loads)
		}
	}
}
