// Package twin is the closed-form analytic twin of the whole simulator:
// O(1) predictions of end-to-end flit-network behaviour (mean latency,
// delivered throughput, flit moves, drain, contention factor) and of the
// protocol instruction counts (via internal/analytic) as functions of
// topology, routing mode, virtual-channel count, offered load, protocol,
// and message size — without running a simulation.
//
// The network side is a calibrated model: per operating regime (topology ×
// mode × VC count) the package commits the simulator's measured values at a
// fixed set of knot loads (tables.go, regenerated with `twin -fit`) and
// evaluates between knots with a monotone cubic Hermite interpolant
// (Fritsch–Carlson PCHIP), which preserves the saturating shape of the
// latency/load curve without polynomial oscillation around the contention
// knee. The protocol side is exact: internal/analytic reproduces the
// simulator's instruction counts bit for bit on the canonical scenarios.
//
// Trust comes from calibration gating, not from the functional form: the
// calibration harness (calibrate.go) sweeps twin-vs-simulator across a
// committed grid that deliberately includes loads *between* the knots, so
// the reported MAPE measures genuine model error, and CI fails when it
// regresses (CAMP-style closed-form bounds validated against execution).
package twin

import (
	"fmt"
	"math"

	"msglayer/internal/flitnet"
)

// Regime identifies one calibrated operating regime of the flit network.
type Regime struct {
	// Topology is "fattree" or "mesh".
	Topology string
	// A, B are the shape: (k, levels) for a fat tree, (w, h) for a mesh.
	A, B int
	// Mode is the routing mode.
	Mode flitnet.Mode
	// VCs is the virtual-channel count.
	VCs int
}

// String names the regime the way reports key it.
func (r Regime) String() string {
	return fmt.Sprintf("%s(%d,%d)/%s/vc%d", r.Topology, r.A, r.B, r.Mode, r.VCs)
}

// ParseMode maps the CLI mode names onto flitnet routing modes.
func ParseMode(s string) (flitnet.Mode, error) {
	switch s {
	case "deterministic":
		return flitnet.Deterministic, nil
	case "adaptive":
		return flitnet.Adaptive, nil
	case "cr":
		return flitnet.CR, nil
	}
	return 0, fmt.Errorf("twin: unknown mode %q (deterministic, adaptive, cr)", s)
}

// Nodes returns the processing-node count of the regime's topology.
func (r Regime) Nodes() (int, error) {
	switch r.Topology {
	case "fattree":
		n := 1
		for i := 0; i < r.B; i++ {
			n *= r.A
		}
		return n, nil
	case "mesh":
		return r.A * r.B, nil
	}
	return 0, fmt.Errorf("twin: unknown topology %q", r.Topology)
}

// MeanLinks returns the structural expectation of the number of link
// traversals (injection channel, router-to-router links, ejection channel)
// a packet makes between two distinct uniform-random nodes. It is the
// load-independent part of the latency model and the anchor for
// extrapolating to uncalibrated topologies.
func (r Regime) MeanLinks() (float64, error) {
	switch r.Topology {
	case "mesh":
		w, h := float64(r.A), float64(r.B)
		n := w * h
		if n < 2 {
			return 0, fmt.Errorf("twin: mesh %dx%d has no traffic pairs", r.A, r.B)
		}
		// E|dx| over independent uniform coordinates is (w^2-1)/(3w); the
		// n/(n-1) factor conditions on dst != src (the uniform pattern
		// never self-sends). Router visits are |dx|+|dy|+1, links one more.
		ex := (w*w - 1) / (3 * w)
		ey := (h*h - 1) / (3 * h)
		return (ex+ey)*n/(n-1) + 2, nil
	case "fattree":
		if r.A < 2 || r.B < 1 {
			return 0, fmt.Errorf("twin: fat tree k=%d levels=%d", r.A, r.B)
		}
		nodes, _ := r.Nodes()
		if nodes < 2 {
			return 0, fmt.Errorf("twin: fat tree k=%d levels=%d has no traffic pairs", r.A, r.B)
		}
		// A pair whose lowest common subtree sits at level l visits 2l-1
		// routers (l up, l-1 back down); the number of peers sharing a
		// level-l subtree but not a level-(l-1) one is k^l - k^(l-1).
		mean := 0.0
		kl := 1
		for l := 1; l <= r.B; l++ {
			prev := kl
			kl *= r.A
			p := float64(kl-prev) / float64(nodes-1)
			mean += p * float64(2*l-1)
		}
		return mean + 1, nil
	}
	return 0, fmt.Errorf("twin: unknown topology %q", r.Topology)
}

// WormFlits returns the flit count of one injected packet in this regime:
// head + payload + tail, with CR padding the payload to the full hardware
// packet so the tail doubles as the end-to-end acknowledgement.
func (r Regime) WormFlits(payloadWords, packetWords int) int {
	if r.Mode == flitnet.CR && payloadWords < packetWords {
		payloadWords = packetWords
	}
	return payloadWords + 2
}

// NetPoint is one flit-network operating point to predict.
type NetPoint struct {
	Regime
	// Load is the offered load in packets/node/cycle (0 < Load <= 1).
	Load float64
	// Cycles is the measurement length the count predictions scale to.
	Cycles int
}

// NetPrediction is the twin's closed-form estimate of one operating point,
// mirroring what cmd/netload measures.
type NetPrediction struct {
	// MeanLatency is the predicted mean packet latency in cycles.
	MeanLatency float64 `json:"mean_latency_cycles"`
	// BaseLatency is the zero-load latency the regime's curve extrapolates
	// to; Contention is MeanLatency/BaseLatency, the paper-style contention
	// factor.
	BaseLatency float64 `json:"base_latency_cycles"`
	Contention  float64 `json:"contention_factor"`
	// Throughput is delivered packets/node/kilocycle (the netload y-axis).
	Throughput float64 `json:"throughput_pkts_per_node_kcycle"`
	// Delivered and FlitMoves are the predicted counts over Cycles.
	Delivered uint64 `json:"delivered"`
	FlitMoves uint64 `json:"flit_moves"`
	// Cycles is the predicted total simulated cycles including the drain
	// after injection stops.
	Cycles uint64 `json:"cycles"`
	// MeanLinks and WormFlits are the structural (uncalibrated) components.
	MeanLinks float64 `json:"mean_links"`
	WormFlits int     `json:"worm_flits"`
	// Calibrated is true when the point hit a committed regime table;
	// false when the prediction fell back to the structural transfer model
	// (same mode, scaled by the topology's mean path length).
	Calibrated bool `json:"calibrated"`
}

// CalKnots is the number of committed knot loads per regime.
const CalKnots = 6

// calKnotLoads are the offered loads the committed tables were measured
// at. They bracket the contention knee (0.1–0.2) tightly, because that is
// where interpolation error concentrates.
var calKnotLoads = [CalKnots]float64{0.02, 0.05, 0.1, 0.15, 0.2, 0.3}

// KnotLoads returns the committed knot loads.
func KnotLoads() []float64 { return append([]float64(nil), calKnotLoads[:]...) }

// calibratedRegime is one committed table entry (see tables.go).
type calibratedRegime struct {
	Regime Regime
	// Lat is mean latency (cycles); Thru delivered packets/node/cycle;
	// Moves flit moves/node/cycle; Drain cycles past the measurement until
	// the network went quiet — each at the knot loads.
	Lat, Thru, Moves, Drain [CalKnots]float64
}

// series is a PCHIP-interpolable knot series with precomputed slopes.
type series struct {
	y [CalKnots]float64
	m [CalKnots]float64
}

// regimeCurve is one regime's full set of calibrated curves.
type regimeCurve struct {
	regime                  Regime
	lat, thru, moves, drain series
}

// curves indexes the calibrated tables by regime; curveOrder preserves the
// committed order for deterministic iteration and fallback donor search.
var (
	curves     map[Regime]*regimeCurve
	curveOrder []*regimeCurve
)

func init() {
	curves = make(map[Regime]*regimeCurve, len(calibratedRegimes))
	for i := range calibratedRegimes {
		c := &calibratedRegimes[i]
		rc := &regimeCurve{
			regime: c.Regime,
			lat:    newSeries(c.Lat),
			thru:   newSeries(c.Thru),
			moves:  newSeries(c.Moves),
			drain:  newSeries(c.Drain),
		}
		curves[c.Regime] = rc
		curveOrder = append(curveOrder, rc)
	}
}

// CalibratedRegimes returns the committed regimes in table order.
func CalibratedRegimes() []Regime {
	out := make([]Regime, len(curveOrder))
	for i, c := range curveOrder {
		out[i] = c.regime
	}
	return out
}

// newSeries precomputes the Fritsch–Carlson monotone cubic Hermite slopes
// for a knot series, so evaluation is allocation-free.
func newSeries(y [CalKnots]float64) series {
	s := series{y: y}
	var h, d [CalKnots - 1]float64
	for i := 0; i < CalKnots-1; i++ {
		h[i] = calKnotLoads[i+1] - calKnotLoads[i]
		d[i] = (y[i+1] - y[i]) / h[i]
	}
	s.m[0] = d[0]
	s.m[CalKnots-1] = d[CalKnots-2]
	for i := 1; i < CalKnots-1; i++ {
		if d[i-1]*d[i] <= 0 {
			// Local extremum: a zero slope keeps the interpolant monotone
			// on both sides instead of overshooting.
			s.m[i] = 0
			continue
		}
		w1 := 2*h[i] + h[i-1]
		w2 := h[i] + 2*h[i-1]
		s.m[i] = (w1 + w2) / (w1/d[i-1] + w2/d[i])
	}
	return s
}

// eval interpolates the series at load x: cubic Hermite between knots,
// linear extrapolation beyond the committed range.
func (s *series) eval(x float64) float64 {
	if x <= calKnotLoads[0] {
		return s.y[0] + s.m[0]*(x-calKnotLoads[0])
	}
	if x >= calKnotLoads[CalKnots-1] {
		return s.y[CalKnots-1] + s.m[CalKnots-1]*(x-calKnotLoads[CalKnots-1])
	}
	i := 0
	for x > calKnotLoads[i+1] {
		i++
	}
	h := calKnotLoads[i+1] - calKnotLoads[i]
	t := (x - calKnotLoads[i]) / h
	u := 1 - t
	h00 := (1 + 2*t) * u * u
	h10 := t * u * u
	h01 := t * t * (3 - 2*t)
	h11 := t * t * (t - 1)
	return h00*s.y[i] + h10*h*s.m[i] + h01*s.y[i+1] + h11*h*s.m[i+1]
}

// base extrapolates the series to zero load along the first knot's slope.
func (s *series) base() float64 {
	return s.y[0] - s.m[0]*calKnotLoads[0]
}

// PredictNet evaluates the twin at one operating point. Points on a
// committed regime use that regime's calibrated curves; other topologies
// and shapes fall back to the structural transfer model (the same-mode
// calibrated curve rescaled by the topologies' mean path lengths), flagged
// with Calibrated=false. Evaluation allocates nothing.
func (pt NetPoint) PredictNet() (NetPrediction, error) {
	if pt.Load <= 0 || pt.Load > 1 {
		return NetPrediction{}, fmt.Errorf("twin: load %g out of (0, 1]", pt.Load)
	}
	if pt.Cycles < 1 {
		return NetPrediction{}, fmt.Errorf("twin: %d measurement cycles", pt.Cycles)
	}
	nodes, err := pt.Nodes()
	if err != nil {
		return NetPrediction{}, err
	}
	links, err := pt.MeanLinks()
	if err != nil {
		return NetPrediction{}, err
	}
	p := NetPrediction{
		MeanLinks: links,
		WormFlits: pt.WormFlits(1, 4), // netload injects 1-word packets, 4-word hardware packets
	}
	if rc, ok := curves[pt.Regime]; ok {
		p.Calibrated = true
		p.MeanLatency = rc.lat.eval(pt.Load)
		p.BaseLatency = rc.lat.base()
		p.Throughput = rc.thru.eval(pt.Load) * 1000
		p.Delivered = round(rc.thru.eval(pt.Load) * float64(nodes) * float64(pt.Cycles))
		p.FlitMoves = round(rc.moves.eval(pt.Load) * float64(nodes) * float64(pt.Cycles))
		p.Cycles = uint64(pt.Cycles) + round(rc.drain.eval(pt.Load))
	} else {
		donor := donorFor(pt.Mode)
		if donor == nil {
			return NetPrediction{}, fmt.Errorf("twin: no calibrated regime for mode %s", pt.Mode)
		}
		// Structural transfer: latency scales with the ratio of structural
		// zero-load latencies (mean links + serialization), flit moves with
		// the mean-links ratio, throughput and drain carry over as per-node
		// rates. A rough model, and marked as such.
		donorLinks, err := donor.regime.MeanLinks()
		if err != nil {
			return NetPrediction{}, err
		}
		flits := float64(p.WormFlits)
		structural := links + flits - 1
		donorStructural := donorLinks + flits - 1
		scale := structural / donorStructural
		p.MeanLatency = donor.lat.eval(pt.Load) * scale
		p.BaseLatency = donor.lat.base() * scale
		p.Throughput = donor.thru.eval(pt.Load) * 1000
		p.Delivered = round(donor.thru.eval(pt.Load) * float64(nodes) * float64(pt.Cycles))
		p.FlitMoves = round(donor.moves.eval(pt.Load) * (links / donorLinks) * float64(nodes) * float64(pt.Cycles))
		p.Cycles = uint64(pt.Cycles) + round(donor.drain.eval(pt.Load)*scale)
	}
	if p.BaseLatency > 0 {
		p.Contention = p.MeanLatency / p.BaseLatency
	}
	return p, nil
}

// donorFor picks the fallback donor regime for an uncalibrated point: the
// first committed regime with the same routing mode, in table order.
func donorFor(mode flitnet.Mode) *regimeCurve {
	for _, c := range curveOrder {
		if c.regime.Mode == mode {
			return c
		}
	}
	return nil
}

// round converts a non-negative model value to the nearest count.
func round(x float64) uint64 {
	if x <= 0 {
		return 0
	}
	return uint64(math.Floor(x + 0.5))
}
