package twin

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"msglayer/internal/experiments"
	"msglayer/internal/flitnet"
	"msglayer/internal/network"
	"msglayer/internal/parsweep"
	"msglayer/internal/report"
	"msglayer/internal/topology"
	"msglayer/internal/workload"
)

// Canonical calibration configuration: every committed number in tables.go
// and every calibration report is measured under these constants.
const (
	// CalCycles is the measurement length per simulated point.
	CalCycles = 800
	// CalSeed seeds the traffic generators.
	CalSeed = 1
	// ReportSchema versions the calibration-report JSON.
	ReportSchema = 1
)

// calHoldoutLoads are the validation loads between the knots. The twin
// reproduces the knots by construction, so these are where genuine model
// error shows; the committed grid includes both so the reported MAPE is
// honest and nonzero.
var calHoldoutLoads = []float64{0.035, 0.075, 0.125, 0.175, 0.25}

// CalLoads returns the full committed calibration grid (knots and
// holdouts), in ascending order.
func CalLoads() []float64 {
	out := append([]float64(nil), calKnotLoads[:]...)
	out = append(out, calHoldoutLoads...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// protoCalWords are the transfer sizes of the protocol calibration grid.
var protoCalWords = []int{16, 64, 256, 1024}

// Options parameterize a calibration run. The results are byte-identical
// at any option values: workers and shards change wall clock only, and the
// dense engine is byte-equivalent to the event-driven one.
type Options struct {
	// Parallel is the worker count for the simulation sweep (0 = GOMAXPROCS).
	Parallel int
	// Shards is the per-point engine shard count (0 = auto).
	Shards int
	// Dense selects the dense reference engine.
	Dense bool
}

// NetRow is one network grid point of the calibration report.
type NetRow struct {
	Regime       string `json:"regime"`
	LoadPermille int    `json:"load_permille"`
	// Knot marks loads the tables were fitted at (the twin reproduces
	// these by construction; holdout rows measure real model error).
	Knot      bool    `json:"knot"`
	MeasLat   float64 `json:"meas_lat"`
	PredLat   float64 `json:"pred_lat"`
	LatErrPm  int64   `json:"lat_err_pm"`
	MeasThru  float64 `json:"meas_thru"`
	PredThru  float64 `json:"pred_thru"`
	ThruErrPm int64   `json:"thru_err_pm"`
	MeasMv    float64 `json:"meas_moves"`
	PredMv    float64 `json:"pred_moves"`
	MvErrPm   int64   `json:"moves_err_pm"`
}

// ProtoRow is one protocol grid point of the calibration report.
type ProtoRow struct {
	Scenario  string `json:"scenario"`
	Words     int    `json:"words"`
	Measured  uint64 `json:"measured_instr"`
	Predicted uint64 `json:"predicted_instr"`
	ErrPm     int64  `json:"err_pm"`
}

// MetricAccuracy is one (regime, metric) accuracy aggregate. MAPE and
// Pearson r are stored as permyriad integers (1/100 of a percent;
// r=0.9987 -> 9987) so the committed baseline compares exactly.
type MetricAccuracy struct {
	Metric    string `json:"metric"`
	MAPEPm    int64  `json:"mape_pm"`
	PearsonPm int64  `json:"pearson_pm"`
}

// RegimeAccuracy aggregates one regime's metrics over the load grid.
type RegimeAccuracy struct {
	Regime  string           `json:"regime"`
	Metrics []MetricAccuracy `json:"metrics"`
}

// Report is one full calibration sweep: every grid point with its
// twin-vs-simulator error, plus the per-regime accuracy aggregates the
// gate compares.
type Report struct {
	Schema        int              `json:"schema"`
	Cycles        int              `json:"cycles"`
	Seed          int64            `json:"seed"`
	Net           []NetRow         `json:"net"`
	Proto         []ProtoRow       `json:"proto"`
	NetAccuracy   []RegimeAccuracy `json:"net_accuracy"`
	ProtoAccuracy []MetricAccuracy `json:"proto_accuracy"`
}

// Thresholds are the accuracy floors the gate enforces.
type Thresholds struct {
	// MaxMAPEPm is the largest acceptable MAPE in permyriad (500 = 5%).
	MaxMAPEPm int64
	// MinPearsonPm is the smallest acceptable Pearson r in permyriad
	// (9900 = 0.99).
	MinPearsonPm int64
}

// DefaultThresholds are the committed accuracy floors: MAPE <= 5% and
// Pearson r >= 0.99 for every regime and metric.
func DefaultThresholds() Thresholds { return Thresholds{MaxMAPEPm: 500, MinPearsonPm: 9900} }

// netSample is one simulated grid point's measured rates.
type netSample struct {
	lat, thru, moves, drain float64
}

// simulateNet runs one calibration point on the real simulator, exactly
// the way cmd/netload measures it (1-word payloads, BufferFlits 3,
// InjectQueue 8, refused injections part of the measurement).
func simulateNet(r Regime, load float64, opt Options, shards int) (netSample, error) {
	var topo topology.Topology
	var err error
	switch r.Topology {
	case "fattree":
		topo, err = topology.NewFatTree(r.A, r.B)
	case "mesh":
		topo, err = topology.NewMesh(r.A, r.B)
	default:
		err = fmt.Errorf("twin: unknown topology %q", r.Topology)
	}
	if err != nil {
		return netSample{}, err
	}
	net, err := flitnet.New(flitnet.Config{
		Topology:        topo,
		Mode:            r.Mode,
		BufferFlits:     3,
		InjectQueue:     8,
		VirtualChannels: r.VCs,
		DenseReference:  opt.Dense,
		Shards:          shards,
	})
	if err != nil {
		return netSample{}, err
	}
	defer net.Close()
	pattern, err := workload.ByName("uniform")
	if err != nil {
		return netSample{}, err
	}
	nodes := net.Nodes()
	gen, err := workload.NewGenerator(pattern, nodes, load, CalSeed)
	if err != nil {
		return netSample{}, err
	}
	for c := 0; c < CalCycles; c++ {
		for _, a := range gen.Cycle() {
			_ = net.Inject(network.Packet{Src: a.Src, Dst: a.Dst, Data: []network.Word{network.Word(c)}})
		}
		net.Tick(1)
	}
	net.TickUntilQuiet(200000)
	for node := 0; node < nodes; node++ {
		for {
			if _, ok := net.TryRecv(node); !ok {
				break
			}
		}
	}
	st := net.FlitStats()
	return netSample{
		lat:   st.MeanLatency(),
		thru:  float64(st.Delivered) / float64(nodes) / float64(CalCycles),
		moves: float64(st.FlitMoves) / float64(nodes) / float64(CalCycles),
		drain: float64(st.Cycles) - float64(CalCycles),
	}, nil
}

// protoPoints enumerates the protocol calibration grid in report order.
func protoPoints() []ProtoPoint {
	pts := []ProtoPoint{{Scenario: "single", Words: 1}}
	for _, sc := range []string{"cm5-finite", "cm5-stream", "cr-finite", "cr-stream"} {
		for _, w := range protoCalWords {
			pts = append(pts, ProtoPoint{Scenario: sc, Words: w})
		}
	}
	return pts
}

// cellsTotal sums a role × feature breakdown to the end-to-end count.
func cellsTotal(cells report.Cells) uint64 { return cells.Total().Total() }

// Calibrate sweeps twin-vs-simulator across the committed grid and returns
// the deterministic calibration report. The simulation side fans across a
// parsweep pool; results are reassembled in input order, so the report is
// byte-identical at any worker count, shard count, and engine.
func Calibrate(opt Options) (*Report, error) {
	workers := parsweep.Workers(opt.Parallel)
	shards := parsweep.Shards(opt.Shards, workers)
	regimes := CalibratedRegimes()
	loads := CalLoads()
	knot := make(map[int]bool, CalKnots)
	for _, l := range calKnotLoads {
		knot[permille(l)] = true
	}

	rep := &Report{Schema: ReportSchema, Cycles: CalCycles, Seed: CalSeed}

	// Network grid: |regimes| x |loads| independent deterministic runs.
	jobs := len(regimes) * len(loads)
	samples := make([]netSample, jobs)
	err := parsweep.Run(workers, jobs, func(i int) error {
		r, load := regimes[i/len(loads)], loads[i%len(loads)]
		s, err := simulateNet(r, load, opt, shards)
		if err != nil {
			return fmt.Errorf("%s load %g: %w", r, load, err)
		}
		samples[i] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ri, r := range regimes {
		var measLat, predLat, measThru, predThru, measMv, predMv []float64
		for li, load := range loads {
			s := samples[ri*len(loads)+li]
			pred, err := NetPoint{Regime: r, Load: load, Cycles: CalCycles}.PredictNet()
			if err != nil {
				return nil, err
			}
			predThruRate := pred.Throughput / 1000
			rep.Net = append(rep.Net, NetRow{
				Regime:       r.String(),
				LoadPermille: permille(load),
				Knot:         knot[permille(load)],
				MeasLat:      s.lat,
				PredLat:      pred.MeanLatency,
				LatErrPm:     errPm(s.lat, pred.MeanLatency),
				MeasThru:     s.thru,
				PredThru:     predThruRate,
				ThruErrPm:    errPm(s.thru, predThruRate),
				MeasMv:       s.moves,
				PredMv:       float64(pred.FlitMoves) / float64(r.mustNodes()) / float64(CalCycles),
				MvErrPm:      errPm(s.moves, float64(pred.FlitMoves)/float64(r.mustNodes())/float64(CalCycles)),
			})
			measLat = append(measLat, s.lat)
			predLat = append(predLat, pred.MeanLatency)
			measThru = append(measThru, s.thru)
			predThru = append(predThru, predThruRate)
			measMv = append(measMv, s.moves)
			predMv = append(predMv, float64(pred.FlitMoves)/float64(r.mustNodes())/float64(CalCycles))
		}
		rep.NetAccuracy = append(rep.NetAccuracy, RegimeAccuracy{
			Regime: r.String(),
			Metrics: []MetricAccuracy{
				{Metric: "lat", MAPEPm: mapePm(measLat, predLat), PearsonPm: pearsonPm(measLat, predLat)},
				{Metric: "thru", MAPEPm: mapePm(measThru, predThru), PearsonPm: pearsonPm(measThru, predThru)},
				{Metric: "moves", MAPEPm: mapePm(measMv, predMv), PearsonPm: pearsonPm(measMv, predMv)},
			},
		})
	}

	// Protocol grid: the analytic model against the real protocol runs.
	pts := protoPoints()
	measured := make([]uint64, len(pts))
	err = parsweep.Run(workers, len(pts), func(i int) error {
		cells, err := experiments.RunCanonical(pts[i].Scenario, pts[i].Words)
		if err != nil {
			return fmt.Errorf("%s words %d: %w", pts[i].Scenario, pts[i].Words, err)
		}
		measured[i] = cellsTotal(cells)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var measInstr, predInstr []float64
	for i, pt := range pts {
		pred, err := pt.PredictProto()
		if err != nil {
			return nil, err
		}
		rep.Proto = append(rep.Proto, ProtoRow{
			Scenario:  pt.Scenario,
			Words:     pt.Words,
			Measured:  measured[i],
			Predicted: pred.Total,
			ErrPm:     errPm(float64(measured[i]), float64(pred.Total)),
		})
		measInstr = append(measInstr, float64(measured[i]))
		predInstr = append(predInstr, float64(pred.Total))
	}
	rep.ProtoAccuracy = []MetricAccuracy{
		{Metric: "instr", MAPEPm: mapePm(measInstr, predInstr), PearsonPm: pearsonPm(measInstr, predInstr)},
	}
	return rep, nil
}

// mustNodes is Nodes for regimes already validated by the table.
func (r Regime) mustNodes() int {
	n, err := r.Nodes()
	if err != nil {
		panic(err)
	}
	return n
}

// Check verifies the report against the accuracy thresholds, returning an
// error naming every violation.
func (rep *Report) Check(t Thresholds) error {
	var bad []string
	for _, ra := range rep.NetAccuracy {
		for _, m := range ra.Metrics {
			if m.MAPEPm > t.MaxMAPEPm {
				bad = append(bad, fmt.Sprintf("%s %s MAPE %s > %s", ra.Regime, m.Metric, pmPercent(m.MAPEPm), pmPercent(t.MaxMAPEPm)))
			}
			if m.PearsonPm < t.MinPearsonPm {
				bad = append(bad, fmt.Sprintf("%s %s Pearson r %s < %s", ra.Regime, m.Metric, pmRatio(m.PearsonPm), pmRatio(t.MinPearsonPm)))
			}
		}
	}
	for _, m := range rep.ProtoAccuracy {
		if m.MAPEPm > t.MaxMAPEPm {
			bad = append(bad, fmt.Sprintf("protocol %s MAPE %s > %s", m.Metric, pmPercent(m.MAPEPm), pmPercent(t.MaxMAPEPm)))
		}
		if m.PearsonPm < t.MinPearsonPm {
			bad = append(bad, fmt.Sprintf("protocol %s Pearson r %s < %s", m.Metric, pmRatio(m.PearsonPm), pmRatio(t.MinPearsonPm)))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	msg := "twin: calibration out of tolerance:"
	for _, b := range bad {
		msg += "\n  " + b
	}
	return fmt.Errorf("%s", msg)
}

// Compare gates a fresh report against a committed baseline: everything is
// deterministic, so any difference at all is drift — the same contract as
// perfreg's exact-equality sim gate. It returns the mismatches (empty
// means pass).
func Compare(baseline, fresh *Report) []string {
	var bad []string
	if baseline.Schema != fresh.Schema || baseline.Cycles != fresh.Cycles || baseline.Seed != fresh.Seed {
		bad = append(bad, fmt.Sprintf("configs differ: schema %d/%d cycles %d/%d seed %d/%d",
			baseline.Schema, fresh.Schema, baseline.Cycles, fresh.Cycles, baseline.Seed, fresh.Seed))
		return bad
	}
	if len(baseline.Net) != len(fresh.Net) {
		bad = append(bad, fmt.Sprintf("net grid size %d vs %d", len(baseline.Net), len(fresh.Net)))
	} else {
		for i := range baseline.Net {
			if baseline.Net[i] != fresh.Net[i] {
				bad = append(bad, fmt.Sprintf("net %s load %d/1000 drifted (lat %v->%v pred %v->%v)",
					baseline.Net[i].Regime, baseline.Net[i].LoadPermille,
					baseline.Net[i].MeasLat, fresh.Net[i].MeasLat,
					baseline.Net[i].PredLat, fresh.Net[i].PredLat))
			}
		}
	}
	if len(baseline.Proto) != len(fresh.Proto) {
		bad = append(bad, fmt.Sprintf("proto grid size %d vs %d", len(baseline.Proto), len(fresh.Proto)))
	} else {
		for i := range baseline.Proto {
			if baseline.Proto[i] != fresh.Proto[i] {
				bad = append(bad, fmt.Sprintf("proto %s words %d drifted (measured %d->%d predicted %d->%d)",
					baseline.Proto[i].Scenario, baseline.Proto[i].Words,
					baseline.Proto[i].Measured, fresh.Proto[i].Measured,
					baseline.Proto[i].Predicted, fresh.Proto[i].Predicted))
			}
		}
	}
	bad = append(bad, compareAccuracy("net", flattenAccuracy(baseline.NetAccuracy), flattenAccuracy(fresh.NetAccuracy))...)
	bad = append(bad, compareAccuracy("proto", accuracyPairs("protocol", baseline.ProtoAccuracy), accuracyPairs("protocol", fresh.ProtoAccuracy))...)
	return bad
}

// accuracyPair is one flattened (scope, metric) accuracy value.
type accuracyPair struct {
	scope string
	m     MetricAccuracy
}

func flattenAccuracy(in []RegimeAccuracy) []accuracyPair {
	var out []accuracyPair
	for _, ra := range in {
		out = append(out, accuracyPairs(ra.Regime, ra.Metrics)...)
	}
	return out
}

func accuracyPairs(scope string, ms []MetricAccuracy) []accuracyPair {
	out := make([]accuracyPair, 0, len(ms))
	for _, m := range ms {
		out = append(out, accuracyPair{scope, m})
	}
	return out
}

func compareAccuracy(kind string, baseline, fresh []accuracyPair) []string {
	var bad []string
	if len(baseline) != len(fresh) {
		return append(bad, fmt.Sprintf("%s accuracy table size %d vs %d", kind, len(baseline), len(fresh)))
	}
	for i := range baseline {
		if baseline[i] != fresh[i] {
			bad = append(bad, fmt.Sprintf("%s accuracy %s/%s drifted: MAPE %s->%s, r %s->%s",
				kind, fresh[i].scope, fresh[i].m.Metric,
				pmPercent(baseline[i].m.MAPEPm), pmPercent(fresh[i].m.MAPEPm),
				pmRatio(baseline[i].m.PearsonPm), pmRatio(fresh[i].m.PearsonPm)))
		}
	}
	return bad
}

// Fit regenerates the committed table source from fresh simulations of the
// knot loads: the output is the body of tables.go. Paste it over the
// existing table when the engine's behaviour legitimately changes.
func Fit(opt Options) (string, error) {
	workers := parsweep.Workers(opt.Parallel)
	shards := parsweep.Shards(opt.Shards, workers)
	regimes := CalibratedRegimes()
	jobs := len(regimes) * CalKnots
	samples := make([]netSample, jobs)
	err := parsweep.Run(workers, jobs, func(i int) error {
		r, load := regimes[i/CalKnots], calKnotLoads[i%CalKnots]
		s, err := simulateNet(r, load, opt, shards)
		if err != nil {
			return fmt.Errorf("%s load %g: %w", r, load, err)
		}
		samples[i] = s
		return nil
	})
	if err != nil {
		return "", err
	}
	out := "var calibratedRegimes = []calibratedRegime{\n"
	for ri, r := range regimes {
		mode := "flitnet.Deterministic"
		switch r.Mode {
		case flitnet.Adaptive:
			mode = "flitnet.Adaptive"
		case flitnet.CR:
			mode = "flitnet.CR"
		}
		out += fmt.Sprintf("\t{\n\t\tRegime: Regime{Topology: %q, A: %d, B: %d, Mode: %s, VCs: %d},\n",
			r.Topology, r.A, r.B, mode, r.VCs)
		row := func(name string, pick func(netSample) float64) string {
			line := fmt.Sprintf("\t\t%s [CalKnots]float64{", name)
			for ki := 0; ki < CalKnots; ki++ {
				if ki > 0 {
					line += ", "
				}
				line += formatKnot(pick(samples[ri*CalKnots+ki]))
			}
			return line + "},\n"
		}
		out += row("Lat:   ", func(s netSample) float64 { return s.lat })
		out += row("Thru:  ", func(s netSample) float64 { return s.thru })
		out += row("Moves: ", func(s netSample) float64 { return s.moves })
		out += row("Drain: ", func(s netSample) float64 { return s.drain })
		out += "\t},\n"
	}
	return out + "}\n", nil
}

// WriteText renders the calibration report as the canonical text table.
func WriteText(w io.Writer, rep *Report) error {
	fmt.Fprintf(w, "analytic twin calibration vs simulator (schema %d)\n", rep.Schema)
	fmt.Fprintf(w, "# cycles: %d, seed: %d, traffic: uniform, payload: 1 word\n", rep.Cycles, rep.Seed)
	fmt.Fprintf(w, "# knots (calibration loads, permille):")
	for _, l := range calKnotLoads {
		fmt.Fprintf(w, " %d", permille(l))
	}
	fmt.Fprintf(w, "\n# holdouts (validation loads, permille):")
	for _, l := range calHoldoutLoads {
		fmt.Fprintf(w, " %d", permille(l))
	}
	fmt.Fprintln(w)
	last := ""
	for _, row := range rep.Net {
		if row.Regime != last {
			last = row.Regime
			fmt.Fprintf(w, "\n== %s\n", row.Regime)
			fmt.Fprintf(w, "%-6s %-4s %10s %10s %8s %10s %10s %8s %10s %10s %8s\n",
				"load", "knot", "meas-lat", "twin-lat", "err%", "meas-thru", "twin-thru", "err%", "meas-mv", "twin-mv", "err%")
		}
		mark := ""
		if row.Knot {
			mark = "*"
		}
		fmt.Fprintf(w, "%-6d %-4s %10.4f %10.4f %8s %10.6f %10.6f %8s %10.6f %10.6f %8s\n",
			row.LoadPermille, mark,
			row.MeasLat, row.PredLat, pmPercent(row.LatErrPm),
			row.MeasThru, row.PredThru, pmPercent(row.ThruErrPm),
			row.MeasMv, row.PredMv, pmPercent(row.MvErrPm))
	}
	fmt.Fprintf(w, "\n== per-regime accuracy over the full grid\n")
	fmt.Fprintf(w, "%-32s %-6s %10s %10s\n", "regime", "metric", "MAPE", "pearson-r")
	for _, ra := range rep.NetAccuracy {
		for _, m := range ra.Metrics {
			fmt.Fprintf(w, "%-32s %-6s %10s %10s\n", ra.Regime, m.Metric, pmPercent(m.MAPEPm), pmRatio(m.PearsonPm))
		}
	}
	fmt.Fprintf(w, "\n== protocol instruction totals (exact analytic model)\n")
	fmt.Fprintf(w, "%-12s %6s %10s %10s %8s\n", "scenario", "words", "measured", "twin", "err%")
	for _, row := range rep.Proto {
		fmt.Fprintf(w, "%-12s %6d %10d %10d %8s\n", row.Scenario, row.Words, row.Measured, row.Predicted, pmPercent(row.ErrPm))
	}
	for _, m := range rep.ProtoAccuracy {
		fmt.Fprintf(w, "accuracy: %s MAPE %s, pearson r %s\n", m.Metric, pmPercent(m.MAPEPm), pmRatio(m.PearsonPm))
	}
	t := DefaultThresholds()
	verdict := "PASS"
	if rep.Check(t) != nil {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "\nthresholds: MAPE <= %s, pearson r >= %s per regime and metric — %s\n",
		pmPercent(t.MaxMAPEPm), pmRatio(t.MinPearsonPm), verdict)
	return nil
}

// WriteJSON renders the report as indented JSON.
func WriteJSON(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteCSV renders the grid rows as CSV (net rows, then proto rows).
func WriteCSV(w io.Writer, rep *Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "regime_or_scenario", "load_permille_or_words", "knot",
		"meas_lat", "pred_lat", "lat_err_pm", "meas_thru", "pred_thru", "thru_err_pm",
		"meas_moves", "pred_moves", "moves_err_pm", "meas_instr", "pred_instr", "instr_err_pm"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, r := range rep.Net {
		if err := cw.Write([]string{"net", r.Regime, strconv.Itoa(r.LoadPermille), strconv.FormatBool(r.Knot),
			f(r.MeasLat), f(r.PredLat), strconv.FormatInt(r.LatErrPm, 10),
			f(r.MeasThru), f(r.PredThru), strconv.FormatInt(r.ThruErrPm, 10),
			f(r.MeasMv), f(r.PredMv), strconv.FormatInt(r.MvErrPm, 10), "", "", ""}); err != nil {
			return err
		}
	}
	for _, r := range rep.Proto {
		if err := cw.Write([]string{"proto", r.Scenario, strconv.Itoa(r.Words), "",
			"", "", "", "", "", "", "", "", "",
			strconv.FormatUint(r.Measured, 10), strconv.FormatUint(r.Predicted, 10), strconv.FormatInt(r.ErrPm, 10)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ParseReport decodes a calibration report, rejecting unknown schemas.
func ParseReport(data []byte) (*Report, error) {
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	if rep.Schema != ReportSchema {
		return nil, fmt.Errorf("twin: report schema %d, this build reads %d", rep.Schema, ReportSchema)
	}
	return &rep, nil
}

// formatKnot renders a measured knot value as the exact Go literal the
// committed tables use (shortest round-tripping decimal).
func formatKnot(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// permille converts a load fraction to its integer permille axis value.
func permille(load float64) int { return int(math.Floor(load*1000 + 0.5)) }

// errPm returns the signed relative error of pred vs meas in permyriad,
// rounded half-up on the magnitude.
func errPm(meas, pred float64) int64 {
	if meas == 0 {
		if pred == 0 {
			return 0
		}
		return 10000
	}
	rel := (pred - meas) / meas
	pm := int64(math.Floor(math.Abs(rel)*10000 + 0.5))
	if rel < 0 {
		return -pm
	}
	return pm
}

// mapePm is the mean absolute percentage error in permyriad over a grid.
func mapePm(meas, pred []float64) int64 {
	if len(meas) == 0 {
		return 0
	}
	sum := 0.0
	for i := range meas {
		if meas[i] == 0 {
			continue
		}
		sum += math.Abs((pred[i] - meas[i]) / meas[i])
	}
	return int64(math.Floor(sum/float64(len(meas))*10000 + 0.5))
}

// pearsonPm is the Pearson correlation coefficient in permyriad. Degenerate
// series (zero variance) score 10000 when identical and 0 otherwise.
func pearsonPm(meas, pred []float64) int64 {
	n := float64(len(meas))
	if n == 0 {
		return 0
	}
	var mm, mp float64
	for i := range meas {
		mm += meas[i]
		mp += pred[i]
	}
	mm /= n
	mp /= n
	var cov, vm, vp float64
	for i := range meas {
		dm, dp := meas[i]-mm, pred[i]-mp
		cov += dm * dp
		vm += dm * dm
		vp += dp * dp
	}
	if vm == 0 || vp == 0 {
		for i := range meas {
			if meas[i] != pred[i] {
				return 0
			}
		}
		return 10000
	}
	r := cov / math.Sqrt(vm*vp)
	pm := int64(math.Floor(r*10000 + 0.5))
	if pm > 10000 {
		pm = 10000
	}
	if pm < -10000 {
		pm = -10000
	}
	return pm
}

// pmPercent formats a permyriad value as a percentage ("1.73%").
func pmPercent(pm int64) string {
	sign := ""
	if pm < 0 {
		sign = "-"
		pm = -pm
	}
	return fmt.Sprintf("%s%d.%02d%%", sign, pm/100, pm%100)
}

// pmRatio formats a permyriad value as a ratio ("0.9987").
func pmRatio(pm int64) string {
	sign := ""
	if pm < 0 {
		sign = "-"
		pm = -pm
	}
	return fmt.Sprintf("%s%d.%04d", sign, pm/10000, pm%10000)
}
