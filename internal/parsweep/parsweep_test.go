package parsweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRunCoversAllIndicesInOrderSlots(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		got := make([]int, 100)
		err := Run(workers, len(got), func(i int) error {
			got[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunSerialMatchesParallel(t *testing.T) {
	build := func(workers int) []string {
		out := make([]string, 37)
		if err := Run(workers, len(out), func(i int) error {
			out[i] = fmt.Sprintf("point-%03d", i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial, parallel := build(1), build(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("slot %d diverged: %q vs %q", i, serial[i], parallel[i])
		}
	}
}

func TestRunReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for trial := 0; trial < 20; trial++ {
		err := Run(4, 50, func(i int) error {
			switch i {
			case 7:
				return errLow
			case 31:
				return errHigh
			default:
				return nil
			}
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: got %v, want error from lowest failing index", trial, err)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	err := Run(workers, 64, func(i int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		defer inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, want <= %d", p, workers)
	}
}

func TestRunCtxCancelledReportsPrefix(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := make([]bool, 100)
	prefix, err := RunCtx(ctx, 4, len(ran), func(i int) error {
		ran[i] = true
		if i == 20 {
			cancel()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if prefix < 1 || prefix > len(ran) {
		t.Fatalf("prefix %d out of range", prefix)
	}
	for i := 0; i < prefix; i++ {
		if !ran[i] {
			t.Fatalf("index %d inside prefix %d never ran", i, prefix)
		}
	}
	if prefix == len(ran) {
		t.Fatal("cancellation at index 20 still ran the whole sweep")
	}
}

func TestRunCtxSerialCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int
	prefix, err := RunCtx(ctx, 1, 10, func(i int) error {
		ran++
		if i == 3 {
			cancel()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if prefix != 4 || ran != 4 {
		t.Fatalf("prefix=%d ran=%d, want 4 and 4", prefix, ran)
	}
}

func TestMapOrdersResults(t *testing.T) {
	out, err := Map(6, 25, func(i int) (int, error) { return i * 3, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*3 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*3)
		}
	}
	if _, err := Map(6, 25, func(i int) (int, error) {
		if i == 11 {
			return 0, errors.New("boom")
		}
		return 0, nil
	}); err == nil {
		t.Fatal("Map swallowed the error")
	}
}

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers must be at least 1")
	}
	if Workers(5) != 5 {
		t.Fatalf("Workers(5) = %d", Workers(5))
	}
}

func TestRunZeroJobs(t *testing.T) {
	if err := Run(4, 0, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestShardsBudget pins the composition policy: effective workers x shards
// never exceeds GOMAXPROCS, grid fan-out (workers) takes precedence over
// intra-run sharding, and auto/overbudget requests resolve to the budget.
func TestShardsBudget(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	cases := []struct {
		requested, workers, want int
	}{
		{0, 1, 8},   // auto with a serial sweep: the whole machine
		{0, 8, 1},   // auto with a saturated sweep: serial engine per point
		{0, 2, 4},   // auto splits the budget across workers
		{-1, 2, 4},  // negatives are auto too
		{3, 2, 3},   // explicit within budget is honored
		{16, 2, 4},  // explicit beyond budget clamps to it
		{1, 1, 1},   // explicit serial stays serial
		{4, 0, 4},   // workers below 1 normalize to 1
		{0, 100, 1}, // more workers than cores still leaves one shard
	}
	for _, c := range cases {
		if got := Shards(c.requested, c.workers); got != c.want {
			t.Errorf("Shards(%d, %d) = %d, want %d", c.requested, c.workers, got, c.want)
		}
	}
	for workers := 1; workers <= 10; workers++ {
		for req := 0; req <= 12; req++ {
			if got := Shards(req, workers); got*workers > 8 && got != 1 {
				t.Errorf("Shards(%d, %d) = %d: workers*shards = %d exceeds GOMAXPROCS=8",
					req, workers, got, got*workers)
			}
		}
	}
}
