package parsweep

import (
	"flag"
	"io"
	"testing"
)

func TestValidatePositiveFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		ok   bool
	}{
		{"unset defaults stay auto", nil, true},
		{"explicit positive", []string{"-parallel", "4", "-shards", "2"}, true},
		{"explicit zero parallel", []string{"-parallel", "0"}, false},
		{"negative parallel", []string{"-parallel", "-3"}, false},
		{"explicit zero shards", []string{"-shards", "0"}, false},
		{"negative shards", []string{"-shards", "-1"}, false},
		{"unchecked flag ignored", []string{"-other", "-5"}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			fs.SetOutput(io.Discard)
			fs.Int("parallel", 0, "")
			fs.Int("shards", 0, "")
			fs.Int("other", 0, "")
			if err := fs.Parse(c.args); err != nil {
				t.Fatal(err)
			}
			err := ValidatePositiveFlags(fs, "parallel", "shards")
			if c.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !c.ok && err == nil {
				t.Error("no error for non-positive value")
			}
		})
	}
}
