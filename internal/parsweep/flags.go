package parsweep

import (
	"flag"
	"fmt"
)

// ValidatePositiveFlags rejects explicitly-set non-positive values for the
// named integer flags. The CLIs share the convention that -parallel and
// -shards default to 0 meaning "auto-size"; a user who *types* 0 or a
// negative value, though, is asking for a nonsensical pool and used to fall
// through to the silent auto default. Only flags the user actually set are
// checked, so the auto default keeps working.
func ValidatePositiveFlags(fs *flag.FlagSet, names ...string) error {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var err error
	fs.Visit(func(f *flag.Flag) {
		if err != nil || !want[f.Name] {
			return
		}
		g, ok := f.Value.(flag.Getter)
		if !ok {
			return
		}
		v, ok := g.Get().(int)
		if !ok {
			return
		}
		if v < 1 {
			err = fmt.Errorf("-%s must be a positive count, got %d", f.Name, v)
		}
	})
	return err
}
