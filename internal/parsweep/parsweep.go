// Package parsweep is a bounded worker pool for fanning independent
// deterministic runs — netload load points, packet-size sweeps, perfreg
// repetitions, canonical experiment scenarios — across GOMAXPROCS
// goroutines.
//
// The contract that keeps parallel sweeps byte-identical to serial ones:
// every job is a pure function of its index, each job writes only into its
// own caller-owned slot, and results are consumed in input order after the
// pool drains. The pool adds no ordering of its own; it only overlaps
// wall-clock time. Workers(1) degenerates to today's serial loop, same
// iteration order and all.
package parsweep

import (
	"context"
	"runtime"
	"sync"
)

// Workers normalizes a -parallel flag value: values below 1 select
// GOMAXPROCS (the number of simultaneously executing goroutines the
// runtime allows, NumCPU by default), anything else is returned as given.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Shards resolves a -shards flag value against the sweep's worker count:
// the two forms of parallelism multiply (each of the workers' simulations
// runs its own shard goroutines), so their product is held to GOMAXPROCS,
// and the grid fan-out — which parallelizes whole independent runs with no
// barrier — takes precedence over intra-run sharding. The budget left for
// shards is max(1, GOMAXPROCS/workers); requested values below 1 select
// the whole budget (auto), larger requests clamp to it. Shard counts never
// change results — the sharded engine is byte-identical at any count — so
// the clamp only caps goroutines, never semantics. Callers pass the
// normalized Workers value.
func Shards(requested, workers int) int {
	if workers < 1 {
		workers = 1
	}
	budget := runtime.GOMAXPROCS(0) / workers
	if budget < 1 {
		budget = 1
	}
	if requested < 1 || requested > budget {
		return budget
	}
	return requested
}

// Run executes fn(i) for every i in [0, n) across at most workers
// goroutines. fn must confine its writes to index-i state; Run imposes no
// ordering between jobs. With workers <= 1 the jobs run serially on the
// calling goroutine in index order, exactly like the loop this replaces.
//
// A failure stops new indices from being dispatched (in-flight jobs
// finish). Because dispatch is in index order, the lowest failing index is
// always reached, and its error is the one returned — so the error a
// caller sees does not depend on goroutine scheduling.
func Run(workers, n int, fn func(i int) error) error {
	_, err := run(context.Background(), workers, n, fn)
	return err
}

// RunCtx is Run with cooperative cancellation: once ctx is cancelled, no
// new indices are dispatched (in-flight jobs finish). It returns the
// completed prefix — the largest d such that every index in [0, d) ran and
// succeeded — which is what an interrupted sweep can still report, and the
// error from the lowest failing index (never ctx.Err itself).
func RunCtx(ctx context.Context, workers, n int, fn func(i int) error) (prefix int, err error) {
	return run(ctx, workers, n, fn)
}

func run(ctx context.Context, workers, n int, fn func(i int) error) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return i, nil
			}
			if err := fn(i); err != nil {
				return i, err
			}
		}
		return n, nil
	}

	var (
		mu      sync.Mutex
		next    int // next index to dispatch
		done    = make([]bool, n)
		errs    = make([]error, n)
		stopped bool // a job failed or ctx was cancelled: stop dispatching
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if stopped || next >= n || ctx.Err() != nil {
			stopped = true
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				err := fn(i)
				mu.Lock()
				done[i] = true
				errs[i] = err
				if err != nil {
					stopped = true
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	prefix := 0
	for prefix < n && done[prefix] && errs[prefix] == nil {
		prefix++
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return prefix, errs[i]
		}
	}
	return prefix, nil
}

// Map runs fn(i) for every i in [0, n) across at most workers goroutines
// and returns the results in input order — the common "sweep a slice of
// points" shape. On error the slice is nil.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Run(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
