// Package topology defines the interconnection-network shapes used by the
// flit-level simulator: a k-ary n-tree (the fat-tree family of the CM-5 data
// network, whose redundant up-links give rise to multipath routing and hence
// arbitrary delivery order) and a 2-D mesh (the canonical substrate for
// Compressionless Routing).
package topology

// Terminal marks a port that connects to a processing node rather than to
// another router.
const Terminal = -1

// Topology describes routers, ports, links, and candidate routes.
//
// Routers are numbered 0..NumRouters()-1 and processing nodes
// 0..Nodes()-1. Every port of every router is connected: either to a peer
// router port or to exactly one node.
type Topology interface {
	// Name identifies the topology in reports, e.g. "fattree(4,2)".
	Name() string
	// Nodes returns the number of processing nodes.
	Nodes() int
	// NumRouters returns the number of routers.
	NumRouters() int
	// Ports returns the number of ports on a router.
	Ports(router int) int
	// Neighbor resolves the far end of (router, port). If the port
	// connects to another router it returns (peerRouter, peerPort,
	// Terminal); if it connects to a node it returns (Terminal, 0, node).
	Neighbor(router, port int) (peerRouter, peerPort, node int)
	// NodePort returns the router and port a node's traffic enters at.
	NodePort(node int) (router, port int)
	// Route returns candidate output ports at router for a packet headed
	// to node dst, in preference order. Deterministic routing always
	// takes the first candidate; adaptive routing may take any. Route
	// never returns the port the node would exit to unless dst is
	// attached there, and never returns an empty slice for a reachable
	// destination.
	Route(router, inPort, dst int) []int
	// RouteAppend is Route writing into a caller-provided buffer instead
	// of allocating: candidates are appended to buf and the extended
	// slice returned. Router hot paths call it once per head flit per
	// cycle with a reusable scratch slice, so routing stays
	// allocation-free.
	RouteAppend(router, inPort, dst int, buf []int) []int
}

// DeterministicPath walks the first-candidate route from src to dst and
// returns the sequence of routers traversed, ending at the router that
// delivers to dst. It is the reference path used by tests and by in-order
// routing modes.
func DeterministicPath(t Topology, src, dst int) []int {
	router, _ := t.NodePort(src)
	path := []int{router}
	// A path can never exceed the router count on a loop-free route; the
	// bound guards against routing-function bugs in tests.
	for hops := 0; hops <= t.NumRouters()+1; hops++ {
		candidates := t.Route(router, -1, dst)
		if len(candidates) == 0 {
			return nil
		}
		port := candidates[0]
		peer, _, node := t.Neighbor(router, port)
		if node != Terminal {
			if node == dst {
				return path
			}
			return nil
		}
		router = peer
		path = append(path, router)
	}
	return nil
}
