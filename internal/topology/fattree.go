package topology

import "fmt"

// FatTree is a k-ary n-tree: k^n processing nodes served by n levels of
// k^(n-1) routers each. Every router has k down ports (0..k-1) and, below
// the top level, k up ports (k..2k-1). The redundant up links are the
// multipath structure of the CM-5 data network: a packet may climb through
// any up port, so two packets between the same pair of nodes can take
// different paths and arrive out of order — the network feature whose
// software cost the paper quantifies.
//
// Router identity: level l in 0..n-1 and an (n-1)-digit base-k word w.
// Router (l, w) connects upward to the k routers (l+1, w') where w' differs
// from w only in digit position l. Level-0 routers are leaves; down port v
// of leaf w connects to node w*k + v.
type FatTree struct {
	k, n    int
	nodes   int
	perLvl  int // routers per level = k^(n-1)
	routers int
}

// NewFatTree constructs a k-ary n-tree. Arity k must be at least 2 and the
// number of levels n at least 1.
func NewFatTree(k, n int) (*FatTree, error) {
	if k < 2 {
		return nil, fmt.Errorf("topology: fat tree arity must be >= 2, got %d", k)
	}
	if n < 1 {
		return nil, fmt.Errorf("topology: fat tree needs >= 1 level, got %d", n)
	}
	nodes := 1
	for i := 0; i < n; i++ {
		nodes *= k
		if nodes > 1<<20 {
			return nil, fmt.Errorf("topology: fat tree %d-ary %d-tree too large", k, n)
		}
	}
	perLvl := nodes / k
	return &FatTree{k: k, n: n, nodes: nodes, perLvl: perLvl, routers: n * perLvl}, nil
}

// MustFatTree is NewFatTree that panics on invalid arguments.
func MustFatTree(k, n int) *FatTree {
	t, err := NewFatTree(k, n)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements Topology.
func (t *FatTree) Name() string { return fmt.Sprintf("fattree(%d,%d)", t.k, t.n) }

// Nodes implements Topology.
func (t *FatTree) Nodes() int { return t.nodes }

// NumRouters implements Topology.
func (t *FatTree) NumRouters() int { return t.routers }

// Arity returns k.
func (t *FatTree) Arity() int { return t.k }

// Levels returns n.
func (t *FatTree) Levels() int { return t.n }

// Ports implements Topology: top-level routers have only down ports.
func (t *FatTree) Ports(router int) int {
	if t.level(router) == t.n-1 {
		return t.k
	}
	return 2 * t.k
}

func (t *FatTree) level(router int) int { return router / t.perLvl }
func (t *FatTree) word(router int) int  { return router % t.perLvl }

func (t *FatTree) routerID(level, word int) int { return level*t.perLvl + word }

// digit returns base-k digit i of x.
func (t *FatTree) digit(x, i int) int {
	for ; i > 0; i-- {
		x /= t.k
	}
	return x % t.k
}

// setDigit returns x with base-k digit i replaced by v.
func (t *FatTree) setDigit(x, i, v int) int {
	pow := 1
	for j := 0; j < i; j++ {
		pow *= t.k
	}
	old := (x / pow) % t.k
	return x + (v-old)*pow
}

// Neighbor implements Topology.
func (t *FatTree) Neighbor(router, port int) (peerRouter, peerPort, node int) {
	l, w := t.level(router), t.word(router)
	if port < t.k {
		// Down port v.
		if l == 0 {
			return Terminal, 0, w*t.k + port
		}
		// Child at level l-1 with word position l-1 set to v; the child
		// reaches us back through its up port selecting our digit l-1.
		child := t.routerID(l-1, t.setDigit(w, l-1, port))
		return child, t.k + t.digit(w, l-1), Terminal
	}
	// Up port j: parent at level l+1 with word position l set to j; the
	// parent reaches us back through its down port selecting our digit l.
	j := port - t.k
	parent := t.routerID(l+1, t.setDigit(w, l, j))
	return parent, t.digit(w, l), Terminal
}

// NodePort implements Topology: node a attaches to leaf router a/k through
// that router's down port a mod k.
func (t *FatTree) NodePort(nodeID int) (router, port int) {
	return t.routerID(0, nodeID/t.k), nodeID % t.k
}

// ancestor reports whether router (l, w) lies above node dst: its word
// digits at positions l..n-2 must match the destination leaf word.
func (t *FatTree) ancestor(l, w, dst int) bool {
	leaf := dst / t.k
	for i := l; i < t.n-1; i++ {
		if t.digit(w, i) != t.digit(leaf, i) {
			return false
		}
	}
	return true
}

// Route implements Topology. If the router is an ancestor of dst the packet
// descends on the unique correct down port; otherwise it may climb through
// any up port. Up-port candidates are rotated by the destination's digit at
// the current level so the first candidate is deterministic per destination
// (giving an in-order single path when routed deterministically) while the
// full candidate set exposes the multipath structure to adaptive routing.
func (t *FatTree) Route(router, inPort, dst int) []int {
	return t.RouteAppend(router, inPort, dst, nil)
}

// RouteAppend implements Topology without allocating: candidates are
// appended to buf.
func (t *FatTree) RouteAppend(router, inPort, dst int, buf []int) []int {
	if dst < 0 || dst >= t.nodes {
		return buf
	}
	l, w := t.level(router), t.word(router)
	if t.ancestor(l, w, dst) {
		if l == 0 {
			return append(buf, dst%t.k)
		}
		return append(buf, t.digit(dst/t.k, l-1))
	}
	start := t.digit(dst, l)
	for i := 0; i < t.k; i++ {
		buf = append(buf, t.k+(start+i)%t.k)
	}
	return buf
}

var _ Topology = (*FatTree)(nil)
