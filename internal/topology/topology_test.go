package topology

import (
	"testing"
	"testing/quick"
)

// checkLinkSymmetry verifies that every router-to-router link is symmetric:
// following a port and then the peer's returned port leads back.
func checkLinkSymmetry(t *testing.T, topo Topology) {
	t.Helper()
	for r := 0; r < topo.NumRouters(); r++ {
		for p := 0; p < topo.Ports(r); p++ {
			peer, peerPort, _ := topo.Neighbor(r, p)
			if peer == Terminal {
				continue // node attachment or unconnected edge port
			}
			back, backPort, backNode := topo.Neighbor(peer, peerPort)
			if backNode != Terminal || back != r || backPort != p {
				t.Errorf("%s: link (%d,%d)->(%d,%d) not symmetric: back=(%d,%d,node=%d)",
					topo.Name(), r, p, peer, peerPort, back, backPort, backNode)
			}
		}
	}
}

// checkNodeAttachment verifies NodePort and Neighbor agree for every node.
func checkNodeAttachment(t *testing.T, topo Topology) {
	t.Helper()
	for nd := 0; nd < topo.Nodes(); nd++ {
		r, p := topo.NodePort(nd)
		peer, _, node := topo.Neighbor(r, p)
		if peer != Terminal || node != nd {
			t.Errorf("%s: node %d attaches at (%d,%d) but Neighbor says (%d,_,%d)",
				topo.Name(), nd, r, p, peer, node)
		}
	}
}

// checkAllPairsRoutable verifies DeterministicPath succeeds for every
// src/dst pair.
func checkAllPairsRoutable(t *testing.T, topo Topology) {
	t.Helper()
	for src := 0; src < topo.Nodes(); src++ {
		for dst := 0; dst < topo.Nodes(); dst++ {
			if path := DeterministicPath(topo, src, dst); path == nil {
				t.Fatalf("%s: no deterministic path %d -> %d", topo.Name(), src, dst)
			}
		}
	}
}

func TestFatTreeShape(t *testing.T) {
	for _, tc := range []struct {
		k, n, nodes, routers int
	}{
		{2, 1, 2, 1},
		{2, 2, 4, 4},
		{2, 3, 8, 12},
		{4, 2, 16, 8},
		{4, 3, 64, 48},
	} {
		ft := MustFatTree(tc.k, tc.n)
		if ft.Nodes() != tc.nodes {
			t.Errorf("fattree(%d,%d) nodes = %d, want %d", tc.k, tc.n, ft.Nodes(), tc.nodes)
		}
		if ft.NumRouters() != tc.routers {
			t.Errorf("fattree(%d,%d) routers = %d, want %d", tc.k, tc.n, ft.NumRouters(), tc.routers)
		}
		if ft.Arity() != tc.k || ft.Levels() != tc.n {
			t.Errorf("fattree(%d,%d) reports arity %d levels %d", tc.k, tc.n, ft.Arity(), ft.Levels())
		}
	}
}

func TestFatTreeRejectsBadArgs(t *testing.T) {
	for _, tc := range [][2]int{{1, 2}, {0, 1}, {4, 0}, {2, 25}} {
		if _, err := NewFatTree(tc[0], tc[1]); err == nil {
			t.Errorf("NewFatTree(%d,%d) accepted invalid args", tc[0], tc[1])
		}
	}
}

func TestMustFatTreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustFatTree(1, 1)
}

func TestFatTreePortCounts(t *testing.T) {
	ft := MustFatTree(4, 3)
	for r := 0; r < ft.NumRouters(); r++ {
		want := 8
		if r/16 == 2 { // top level has no up ports
			want = 4
		}
		if got := ft.Ports(r); got != want {
			t.Errorf("router %d ports = %d, want %d", r, got, want)
		}
	}
}

func TestFatTreeInvariants(t *testing.T) {
	for _, tc := range [][2]int{{2, 2}, {2, 3}, {4, 2}, {4, 3}} {
		ft := MustFatTree(tc[0], tc[1])
		checkLinkSymmetry(t, ft)
		checkNodeAttachment(t, ft)
		checkAllPairsRoutable(t, ft)
	}
}

func TestFatTreePathLengths(t *testing.T) {
	ft := MustFatTree(4, 3)
	// Same leaf router: path is just that router.
	if p := DeterministicPath(ft, 0, 1); len(p) != 1 {
		t.Errorf("same-leaf path length = %d, want 1", len(p))
	}
	// Nodes 0 and 63 differ in the top digit: full climb and descent,
	// 2*levels - 1 routers.
	if p := DeterministicPath(ft, 0, 63); len(p) != 5 {
		t.Errorf("cross-tree path length = %d, want 5 (%v)", len(p), p)
	}
	// Self-delivery stays at the leaf.
	if p := DeterministicPath(ft, 7, 7); len(p) != 1 {
		t.Errorf("self path length = %d, want 1", len(p))
	}
}

func TestFatTreeMultipath(t *testing.T) {
	ft := MustFatTree(4, 2)
	// A non-ancestor leaf router offers all k up ports.
	r, _ := ft.NodePort(0)
	cands := ft.Route(r, -1, 15) // node 15 is under a different leaf
	if len(cands) != 4 {
		t.Fatalf("ascent candidates = %d, want 4 (%v)", len(cands), cands)
	}
	seen := map[int]bool{}
	for _, p := range cands {
		if p < 4 || p >= 8 {
			t.Errorf("ascent candidate %d is not an up port", p)
		}
		seen[p] = true
	}
	if len(seen) != 4 {
		t.Errorf("duplicate ascent candidates: %v", cands)
	}
	// An ancestor router has exactly one descent candidate.
	top := ft.NumRouters() - 1
	if got := ft.Route(top, -1, 3); len(got) != 1 {
		t.Errorf("descent candidates = %v, want exactly one", got)
	}
}

// Every up-port choice during ascent still leads to a router from which the
// destination remains reachable — multipath is harmless.
func TestFatTreeAllAscentPathsReachDestination(t *testing.T) {
	ft := MustFatTree(4, 2)
	var walk func(router, dst, depth int) bool
	walk = func(router, dst, depth int) bool {
		if depth > 8 {
			return false
		}
		cands := ft.Route(router, -1, dst)
		if len(cands) == 0 {
			return false
		}
		for _, p := range cands {
			peer, _, node := ft.Neighbor(router, p)
			if node == dst {
				continue // delivered
			}
			if node != Terminal {
				return false // delivered to the wrong node
			}
			if !walk(peer, dst, depth+1) {
				return false
			}
		}
		return true
	}
	for _, pair := range [][2]int{{0, 15}, {3, 12}, {5, 10}, {0, 1}} {
		r, _ := ft.NodePort(pair[0])
		if !walk(r, pair[1], 0) {
			t.Errorf("some path %d -> %d fails to deliver", pair[0], pair[1])
		}
	}
}

func TestFatTreeRouteRejectsBadDestination(t *testing.T) {
	ft := MustFatTree(2, 2)
	if got := ft.Route(0, -1, -1); got != nil {
		t.Errorf("Route(-1) = %v", got)
	}
	if got := ft.Route(0, -1, ft.Nodes()); got != nil {
		t.Errorf("Route(N) = %v", got)
	}
}

func TestMeshShape(t *testing.T) {
	m := MustMesh(4, 3)
	if m.Nodes() != 12 || m.NumRouters() != 12 {
		t.Errorf("mesh(4x3) nodes/routers = %d/%d", m.Nodes(), m.NumRouters())
	}
	if m.Width() != 4 || m.Height() != 3 {
		t.Errorf("dimensions = %dx%d", m.Width(), m.Height())
	}
	if m.Name() != "mesh(4x3)" {
		t.Errorf("Name = %q", m.Name())
	}
	x, y := m.XY(7)
	if x != 3 || y != 1 {
		t.Errorf("XY(7) = (%d,%d), want (3,1)", x, y)
	}
	if m.ID(3, 1) != 7 {
		t.Errorf("ID(3,1) = %d, want 7", m.ID(3, 1))
	}
}

func TestMeshRejectsBadArgs(t *testing.T) {
	for _, tc := range [][2]int{{0, 4}, {4, 0}, {-1, 2}, {2048, 2048}} {
		if _, err := NewMesh(tc[0], tc[1]); err == nil {
			t.Errorf("NewMesh(%d,%d) accepted invalid args", tc[0], tc[1])
		}
	}
}

func TestMustMeshPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustMesh(0, 0)
}

func TestMeshInvariants(t *testing.T) {
	for _, tc := range [][2]int{{1, 1}, {4, 1}, {1, 5}, {4, 4}, {5, 3}} {
		m := MustMesh(tc[0], tc[1])
		checkLinkSymmetry(t, m)
		checkNodeAttachment(t, m)
		checkAllPairsRoutable(t, m)
	}
}

func TestMeshEdgePortsUnconnected(t *testing.T) {
	m := MustMesh(3, 3)
	// Corner router 0 has no west or south neighbors.
	for _, p := range []int{PortWest, PortSouth} {
		peer, _, node := m.Neighbor(0, p)
		if peer != Terminal || node != Terminal {
			t.Errorf("corner port %d should be unconnected, got (%d,%d)", p, peer, node)
		}
	}
}

// Dimension-order routing: the deterministic path length equals the
// Manhattan distance plus one, and X progress completes before Y begins.
func TestMeshDimensionOrderPaths(t *testing.T) {
	m := MustMesh(5, 4)
	for src := 0; src < m.Nodes(); src++ {
		for dst := 0; dst < m.Nodes(); dst++ {
			path := DeterministicPath(m, src, dst)
			sx, sy := m.XY(src)
			dx, dy := m.XY(dst)
			manhattan := abs(sx-dx) + abs(sy-dy)
			if len(path) != manhattan+1 {
				t.Fatalf("path %d->%d has %d routers, want %d", src, dst, len(path), manhattan+1)
			}
			turned := false
			for i := 1; i < len(path); i++ {
				px, py := m.XY(path[i-1])
				cx, cy := m.XY(path[i])
				if cy != py {
					turned = true
				} else if turned {
					t.Fatalf("path %d->%d moves in X after Y: %v", src, dst, path)
				}
				if abs(cx-px)+abs(cy-py) != 1 {
					t.Fatalf("path %d->%d has a non-unit hop: %v", src, dst, path)
				}
			}
		}
	}
}

func TestMeshAdaptiveCandidatesAreProductive(t *testing.T) {
	m := MustMesh(4, 4)
	// From (0,0) to (2,2): both east and north are productive.
	cands := m.Route(m.ID(0, 0), -1, m.ID(2, 2))
	if len(cands) != 2 || cands[0] != PortEast || cands[1] != PortNorth {
		t.Errorf("candidates = %v, want [east north]", cands)
	}
	// Same column: only Y movement.
	cands = m.Route(m.ID(2, 0), -1, m.ID(2, 3))
	if len(cands) != 1 || cands[0] != PortNorth {
		t.Errorf("candidates = %v, want [north]", cands)
	}
	// Arrived: deliver locally.
	cands = m.Route(5, -1, 5)
	if len(cands) != 1 || cands[0] != PortLocal {
		t.Errorf("candidates = %v, want [local]", cands)
	}
}

func TestMeshRouteRejectsBadDestination(t *testing.T) {
	m := MustMesh(2, 2)
	if got := m.Route(0, -1, 99); got != nil {
		t.Errorf("Route(99) = %v", got)
	}
}

// Property: on random meshes, random pairs route with minimal hop count.
func TestMeshRoutingProperty(t *testing.T) {
	prop := func(wRaw, hRaw, aRaw, bRaw uint8) bool {
		w := int(wRaw%6) + 1
		h := int(hRaw%6) + 1
		m := MustMesh(w, h)
		a := int(aRaw) % m.Nodes()
		b := int(bRaw) % m.Nodes()
		path := DeterministicPath(m, a, b)
		ax, ay := m.XY(a)
		bx, by := m.XY(b)
		return len(path) == abs(ax-bx)+abs(ay-by)+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: on random fat trees, random pairs are deterministically
// routable and the path never exceeds 2*levels - 1 routers.
func TestFatTreeRoutingProperty(t *testing.T) {
	prop := func(kRaw, nRaw, aRaw, bRaw uint8) bool {
		k := int(kRaw%3) + 2 // 2..4
		n := int(nRaw%3) + 1 // 1..3
		ft := MustFatTree(k, n)
		a := int(aRaw) % ft.Nodes()
		b := int(bRaw) % ft.Nodes()
		path := DeterministicPath(ft, a, b)
		return path != nil && len(path) <= 2*n-1+2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
