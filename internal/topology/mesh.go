package topology

import "fmt"

// Mesh port numbering. Port PortLocal attaches the processing node; the four
// direction ports connect neighboring routers.
const (
	PortLocal = 0
	PortEast  = 1
	PortWest  = 2
	PortNorth = 3
	PortSouth = 4

	meshPorts = 5
)

// Mesh is a W x H 2-D mesh with one router per processing node — the
// canonical substrate of Compressionless Routing. Deterministic routing is
// dimension-order (X then Y), which delivers packets between any fixed pair
// of nodes along a single path and therefore in order; the adaptive
// candidate set additionally offers the productive Y-direction first hop.
type Mesh struct {
	w, h int
}

// NewMesh constructs a W x H mesh; both dimensions must be positive.
func NewMesh(w, h int) (*Mesh, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("topology: mesh dimensions must be positive, got %dx%d", w, h)
	}
	if w*h > 1<<20 {
		return nil, fmt.Errorf("topology: mesh %dx%d too large", w, h)
	}
	return &Mesh{w: w, h: h}, nil
}

// MustMesh is NewMesh that panics on invalid arguments.
func MustMesh(w, h int) *Mesh {
	m, err := NewMesh(w, h)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements Topology.
func (m *Mesh) Name() string { return fmt.Sprintf("mesh(%dx%d)", m.w, m.h) }

// Nodes implements Topology.
func (m *Mesh) Nodes() int { return m.w * m.h }

// NumRouters implements Topology: one router per node.
func (m *Mesh) NumRouters() int { return m.w * m.h }

// Width returns the X dimension.
func (m *Mesh) Width() int { return m.w }

// Height returns the Y dimension.
func (m *Mesh) Height() int { return m.h }

// Ports implements Topology. Edge routers still report five ports; the
// off-mesh directions are simply unconnected and never routed to.
func (m *Mesh) Ports(int) int { return meshPorts }

// XY returns the coordinates of a node or router id.
func (m *Mesh) XY(id int) (x, y int) { return id % m.w, id / m.w }

// ID returns the node/router id at coordinates (x, y).
func (m *Mesh) ID(x, y int) int { return y*m.w + x }

// Neighbor implements Topology. Ports that would leave the mesh return
// (Terminal, 0, Terminal); the routing function never selects them.
func (m *Mesh) Neighbor(router, port int) (peerRouter, peerPort, node int) {
	x, y := m.XY(router)
	switch port {
	case PortLocal:
		return Terminal, 0, router
	case PortEast:
		if x+1 < m.w {
			return m.ID(x+1, y), PortWest, Terminal
		}
	case PortWest:
		if x > 0 {
			return m.ID(x-1, y), PortEast, Terminal
		}
	case PortNorth:
		if y+1 < m.h {
			return m.ID(x, y+1), PortSouth, Terminal
		}
	case PortSouth:
		if y > 0 {
			return m.ID(x, y-1), PortNorth, Terminal
		}
	}
	return Terminal, 0, Terminal
}

// NodePort implements Topology.
func (m *Mesh) NodePort(node int) (router, port int) { return node, PortLocal }

// Route implements Topology: dimension-order first (X then Y), with the
// productive Y hop appended as an adaptive alternative while X progress
// remains.
func (m *Mesh) Route(router, inPort, dst int) []int {
	return m.RouteAppend(router, inPort, dst, nil)
}

// RouteAppend implements Topology without allocating: candidates are
// appended to buf.
func (m *Mesh) RouteAppend(router, inPort, dst int, buf []int) []int {
	if dst < 0 || dst >= m.Nodes() {
		return buf
	}
	x, y := m.XY(router)
	dx, dy := m.XY(dst)
	var xPort, yPort int
	switch {
	case dx > x:
		xPort = PortEast
	case dx < x:
		xPort = PortWest
	}
	switch {
	case dy > y:
		yPort = PortNorth
	case dy < y:
		yPort = PortSouth
	}
	switch {
	case xPort != 0 && yPort != 0:
		return append(buf, xPort, yPort)
	case xPort != 0:
		return append(buf, xPort)
	case yPort != 0:
		return append(buf, yPort)
	default:
		return append(buf, PortLocal)
	}
}

var _ Topology = (*Mesh)(nil)
