// Package network provides behavioral models of the two routing substrates
// the paper compares:
//
//   - CM5Net models the CM-5 data network's messaging-layer-visible
//     contract: packets between a pair of nodes may be delivered in
//     arbitrary order, buffering is finite (injection can backpressure),
//     and faults are detected (corrupt packets carry a failed CRC and are
//     discarded by the receiver) but never corrected.
//   - CRNet models a Compressionless-Routing substrate: delivery is
//     order-preserving per source/destination pair, packets are delivered
//     reliably (transient faults are retried invisibly by the hardware),
//     and a destination out of resources can reject a transfer's header
//     packet without deadlocking the network.
//
// These models carry real data end to end; the flit-level simulator in
// package flitnet demonstrates the router mechanisms that give rise to the
// same contracts and is cross-validated against these models.
package network

import (
	"errors"
	"fmt"
)

// Word is a 32-bit network word, the CM-5's transfer unit.
type Word uint32

// Tag is the hardware message tag used to vector received packets to
// handlers, mirroring the CM-5 NI tag field.
type Tag uint8

// Packet is one hardware packet: on the CM-5, five words — here one
// metadata head word plus up to PacketWords data words.
type Packet struct {
	Src, Dst int
	Tag      Tag
	Head     Word   // protocol metadata: handler id, segment/offset, sequence
	Data     []Word // payload, at most the network's packet payload size
	// Corrupt marks a packet whose CRC check fails at the receiver. The
	// receiving NI detects and discards such packets; nothing in software
	// ever observes the payload.
	Corrupt bool

	// Msg, Span, and Pkt are observability identities stamped by the
	// sending messaging layer (see internal/obs): the causal message the
	// packet belongs to, the sender's open span (the packet's causal parent
	// at the receiver), and the packet's own id. All zero when tracing is
	// off; the substrates carry them end to end but never interpret them.
	Msg, Span, Pkt uint64

	flow uint64 // per-(src,dst) injection sequence, set by the network
}

// FlowSeq returns the packet's per-(src,dst) injection sequence number,
// assigned by the network at Inject time. Tests use it to verify ordering
// contracts.
func (p Packet) FlowSeq() uint64 { return p.flow }

// Injection and acceptance errors.
var (
	// ErrBackpressure reports that finite buffering toward the
	// destination is exhausted; the sender must retry later.
	ErrBackpressure = errors.New("network: injection backpressured, retry")
	// ErrRejected reports that the destination refused the packet at
	// acceptance time (Compressionless Routing header rejection).
	ErrRejected = errors.New("network: header packet rejected by destination")
	// ErrBadPacket reports a malformed injection request.
	ErrBadPacket = errors.New("network: malformed packet")
)

// Network is the substrate contract the messaging layers program against.
type Network interface {
	// Name identifies the substrate in reports.
	Name() string
	// Nodes returns the number of attached processing nodes.
	Nodes() int
	// PacketWords returns the payload capacity of one hardware packet.
	PacketWords() int
	// Inject attempts to insert a packet. It may fail with
	// ErrBackpressure (finite buffering) or ErrRejected (CR header
	// rejection); both leave the network unchanged.
	Inject(p Packet) error
	// TryRecv pops the next deliverable packet for a node, reporting
	// false when nothing is deliverable.
	TryRecv(node int) (Packet, bool)
	// Pending returns the number of packets somewhere in the network.
	Pending() int
	// Stats returns cumulative counters.
	Stats() Stats
}

// Stats are cumulative network counters.
type Stats struct {
	Injected     uint64
	Delivered    uint64
	Dropped      uint64 // lost to injected faults (CM5Net only)
	CorruptSeen  uint64 // delivered with a failed CRC (CM5Net only)
	Backpressure uint64 // Inject calls refused for lack of buffering
	Rejected     uint64 // header packets refused by the destination
	HWRetries    uint64 // transparent hardware retries (CRNet only)
}

func (s Stats) String() string {
	return fmt.Sprintf("injected=%d delivered=%d dropped=%d corrupt=%d backpressure=%d rejected=%d hwretries=%d",
		s.Injected, s.Delivered, s.Dropped, s.CorruptSeen, s.Backpressure, s.Rejected, s.HWRetries)
}

// validate checks an injection request against the substrate geometry.
func validate(p Packet, nodes, packetWords int) error {
	if p.Src < 0 || p.Src >= nodes || p.Dst < 0 || p.Dst >= nodes {
		return fmt.Errorf("%w: src=%d dst=%d with %d nodes", ErrBadPacket, p.Src, p.Dst, nodes)
	}
	if len(p.Data) > packetWords {
		return fmt.Errorf("%w: %d payload words exceeds packet size %d", ErrBadPacket, len(p.Data), packetWords)
	}
	return nil
}

// clonePayload defensively copies the payload so callers can reuse their
// scratch buffers after Inject returns.
func clonePayload(data []Word) []Word {
	if len(data) == 0 {
		return nil
	}
	out := make([]Word, len(data))
	copy(out, data)
	return out
}
