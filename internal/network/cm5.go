package network

import (
	"fmt"

	"msglayer/internal/obs"
)

// CM5Config configures a CM5Net.
type CM5Config struct {
	// Nodes is the number of attached processing nodes (required).
	Nodes int
	// PacketWords is the payload capacity of a hardware packet; the CM-5
	// carries four data words. Defaults to 4.
	PacketWords int
	// Reorder chooses the per-flow delivery-order model. Defaults to
	// InOrder (no reordering).
	Reorder ReorderPolicy
	// Faults injects packet corruption and loss. Defaults to NoFaults.
	Faults FaultPlan
	// Capacity bounds the packets buffered toward any one destination,
	// modeling finite network and node buffering. Zero means unbounded.
	Capacity int
}

type flowKey struct{ src, dst int }

type flowState struct {
	reorderer Reorderer
	nextSeq   uint64
	held      int // packets inside the reorderer
}

// CM5Net is the behavioral model of the CM-5 data network: arbitrary
// delivery order within a flow (per the configured policy), finite
// buffering, and fault detection without correction.
type CM5Net struct {
	cfg    CM5Config
	queues [][]Packet // deliverable packets per destination
	flows  map[flowKey]*flowState
	byDst  [][]*flowState // flows targeting each destination, for flushing
	stats  Stats
	obs    *obs.NetScope
}

// NewCM5Net constructs the network.
func NewCM5Net(cfg CM5Config) (*CM5Net, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("network: CM5Net needs >= 1 node, got %d", cfg.Nodes)
	}
	if cfg.PacketWords == 0 {
		cfg.PacketWords = 4
	}
	if cfg.PacketWords < 1 {
		return nil, fmt.Errorf("network: packet payload must be positive, got %d", cfg.PacketWords)
	}
	if cfg.Reorder == nil {
		cfg.Reorder = InOrder()
	}
	if cfg.Faults == nil {
		cfg.Faults = NoFaults{}
	}
	return &CM5Net{
		cfg:    cfg,
		queues: make([][]Packet, cfg.Nodes),
		flows:  make(map[flowKey]*flowState),
		byDst:  make([][]*flowState, cfg.Nodes),
	}, nil
}

// MustCM5Net is NewCM5Net that panics on bad configuration.
func MustCM5Net(cfg CM5Config) *CM5Net {
	n, err := NewCM5Net(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Name implements Network.
func (n *CM5Net) Name() string { return "cm5" }

// SetObserver implements obs.NetInstrumentable.
func (n *CM5Net) SetObserver(s *obs.NetScope) { n.obs = s }

// QueueDepth implements obs.DepthProber: packets buffered toward a node,
// queued or held in reorderers.
func (n *CM5Net) QueueDepth(node int) int {
	if node < 0 || node >= n.cfg.Nodes {
		return 0
	}
	return n.inFlight(node)
}

// Nodes implements Network.
func (n *CM5Net) Nodes() int { return n.cfg.Nodes }

// PacketWords implements Network.
func (n *CM5Net) PacketWords() int { return n.cfg.PacketWords }

// inFlight counts packets buffered toward a destination, queued or held.
func (n *CM5Net) inFlight(dst int) int {
	count := len(n.queues[dst])
	for _, f := range n.byDst[dst] {
		count += f.held
	}
	return count
}

// Inject implements Network.
func (n *CM5Net) Inject(p Packet) error {
	if err := validate(p, n.cfg.Nodes, n.cfg.PacketWords); err != nil {
		return err
	}
	if n.cfg.Capacity > 0 && n.inFlight(p.Dst) >= n.cfg.Capacity {
		n.stats.Backpressure++
		n.obs.Backpressure(p.Dst)
		return ErrBackpressure
	}

	key := flowKey{p.Src, p.Dst}
	f := n.flows[key]
	if f == nil {
		f = &flowState{reorderer: n.cfg.Reorder()}
		n.flows[key] = f
		n.byDst[p.Dst] = append(n.byDst[p.Dst], f)
	}
	p.flow = f.nextSeq
	f.nextSeq++
	p.Data = clonePayload(p.Data)
	n.stats.Injected++
	n.obs.Injected()

	switch n.cfg.Faults.Judge(p) {
	case Drop:
		n.stats.Dropped++
		n.obs.Dropped(p.Dst)
		return nil // the network ate it; nobody is told
	case Corrupt:
		p.Corrupt = true
	}

	before := f.held + 1
	released := f.reorderer.Push(p)
	f.held = before - len(released)
	n.queues[p.Dst] = append(n.queues[p.Dst], released...)
	return nil
}

// TryRecv implements Network. When a destination's queue is empty, any
// packets still held inside reorderers for that destination are flushed —
// the adaptive paths eventually converge.
func (n *CM5Net) TryRecv(node int) (Packet, bool) {
	if node < 0 || node >= n.cfg.Nodes {
		return Packet{}, false
	}
	if len(n.queues[node]) == 0 {
		for _, f := range n.byDst[node] {
			if f.held > 0 {
				released := f.reorderer.Flush()
				f.held -= len(released)
				n.queues[node] = append(n.queues[node], released...)
			}
		}
	}
	if len(n.queues[node]) == 0 {
		return Packet{}, false
	}
	p := n.queues[node][0]
	n.queues[node] = n.queues[node][1:]
	n.stats.Delivered++
	n.obs.Delivered()
	if p.Corrupt {
		n.stats.CorruptSeen++
		n.obs.Corrupt(node)
	}
	return p, true
}

// Pending implements Network.
func (n *CM5Net) Pending() int {
	total := 0
	for dst := range n.queues {
		total += n.inFlight(dst)
	}
	return total
}

// Stats implements Network.
func (n *CM5Net) Stats() Stats { return n.stats }

var _ Network = (*CM5Net)(nil)
