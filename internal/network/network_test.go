package network

import (
	"errors"
	"strings"
	"testing"
)

func TestPacketValidation(t *testing.T) {
	n := MustCM5Net(CM5Config{Nodes: 4})
	cases := []Packet{
		{Src: -1, Dst: 0},
		{Src: 0, Dst: 4},
		{Src: 4, Dst: 0},
		{Src: 0, Dst: 1, Data: make([]Word, 5)},
	}
	for _, p := range cases {
		if err := n.Inject(p); !errors.Is(err, ErrBadPacket) {
			t.Errorf("Inject(%+v) = %v, want ErrBadPacket", p, err)
		}
	}
}

func TestCM5DeliversPayloadIntact(t *testing.T) {
	n := MustCM5Net(CM5Config{Nodes: 2})
	want := []Word{1, 2, 3, 4}
	scratch := append([]Word(nil), want...)
	if err := n.Inject(Packet{Src: 0, Dst: 1, Tag: 7, Head: 99, Data: scratch}); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's buffer after Inject must not affect delivery.
	scratch[0] = 1000

	p, ok := n.TryRecv(1)
	if !ok {
		t.Fatal("nothing delivered")
	}
	if p.Src != 0 || p.Dst != 1 || p.Tag != 7 || p.Head != 99 {
		t.Errorf("header fields wrong: %+v", p)
	}
	if len(p.Data) != 4 {
		t.Fatalf("payload length %d", len(p.Data))
	}
	for i, w := range want {
		if p.Data[i] != w {
			t.Errorf("word %d = %d, want %d", i, p.Data[i], w)
		}
	}
	if _, ok := n.TryRecv(1); ok {
		t.Error("second receive should find nothing")
	}
}

func TestCM5TryRecvBadNode(t *testing.T) {
	n := MustCM5Net(CM5Config{Nodes: 2})
	if _, ok := n.TryRecv(-1); ok {
		t.Error("TryRecv(-1) returned a packet")
	}
	if _, ok := n.TryRecv(2); ok {
		t.Error("TryRecv(2) returned a packet")
	}
}

func TestCM5DefaultsAndConfigErrors(t *testing.T) {
	if _, err := NewCM5Net(CM5Config{Nodes: 0}); err == nil {
		t.Error("accepted zero nodes")
	}
	if _, err := NewCM5Net(CM5Config{Nodes: 2, PacketWords: -1}); err == nil {
		t.Error("accepted negative packet size")
	}
	n := MustCM5Net(CM5Config{Nodes: 2})
	if n.PacketWords() != 4 {
		t.Errorf("default packet words = %d, want 4", n.PacketWords())
	}
	if n.Nodes() != 2 || n.Name() != "cm5" {
		t.Errorf("identity wrong: %s/%d", n.Name(), n.Nodes())
	}
}

func TestMustCM5NetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustCM5Net(CM5Config{})
}

func TestCM5PairSwapReordersExactlyHalf(t *testing.T) {
	n := MustCM5Net(CM5Config{Nodes: 2, Reorder: PairSwap()})
	const p = 8
	for i := 0; i < p; i++ {
		if err := n.Inject(Packet{Src: 0, Dst: 1, Head: Word(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []Word
	for {
		pkt, ok := n.TryRecv(1)
		if !ok {
			break
		}
		got = append(got, pkt.Head)
	}
	want := []Word{1, 0, 3, 2, 5, 4, 7, 6}
	if len(got) != len(want) {
		t.Fatalf("delivered %d packets, want %d", len(got), len(want))
	}
	// Count arrivals that could not be consumed in sequence — the paper's
	// definition of an out-of-order arrival needing reorder buffering.
	ooo := 0
	expected := Word(0)
	buffered := map[Word]bool{}
	for i, w := range got {
		if w != want[i] {
			t.Errorf("delivery %d = %d, want %d", i, w, want[i])
		}
		if w == expected {
			expected++
			for buffered[expected] {
				delete(buffered, expected)
				expected++
			}
		} else {
			ooo++
			buffered[w] = true
		}
	}
	if ooo != p/2 {
		t.Errorf("out-of-order arrivals = %d, want %d", ooo, p/2)
	}
}

func TestCM5PairSwapFlushesHeldPacketOnOddCount(t *testing.T) {
	n := MustCM5Net(CM5Config{Nodes: 2, Reorder: PairSwap()})
	for i := 0; i < 3; i++ {
		if err := n.Inject(Packet{Src: 0, Dst: 1, Head: Word(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []Word
	for {
		pkt, ok := n.TryRecv(1)
		if !ok {
			break
		}
		got = append(got, pkt.Head)
	}
	want := []Word{1, 0, 2}
	if len(got) != 3 {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("delivered %v, want %v", got, want)
			break
		}
	}
}

func TestCM5ReorderingIsPerFlow(t *testing.T) {
	// Packets from two different sources to one destination must not
	// swap with each other, only within their own flow.
	n := MustCM5Net(CM5Config{Nodes: 3, Reorder: PairSwap()})
	for i := 0; i < 2; i++ {
		if err := n.Inject(Packet{Src: 0, Dst: 2, Head: Word(100 + i)}); err != nil {
			t.Fatal(err)
		}
		if err := n.Inject(Packet{Src: 1, Dst: 2, Head: Word(200 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	var flow0, flow1 []Word
	for {
		pkt, ok := n.TryRecv(2)
		if !ok {
			break
		}
		if pkt.Src == 0 {
			flow0 = append(flow0, pkt.Head)
		} else {
			flow1 = append(flow1, pkt.Head)
		}
	}
	if len(flow0) != 2 || flow0[0] != 101 || flow0[1] != 100 {
		t.Errorf("flow0 = %v, want [101 100]", flow0)
	}
	if len(flow1) != 2 || flow1[0] != 201 || flow1[1] != 200 {
		t.Errorf("flow1 = %v, want [201 200]", flow1)
	}
}

func TestCM5WindowShuffleDeliversPermutation(t *testing.T) {
	n := MustCM5Net(CM5Config{Nodes: 2, Reorder: WindowShuffle(4, 42)})
	const p = 10
	for i := 0; i < p; i++ {
		if err := n.Inject(Packet{Src: 0, Dst: 1, Head: Word(i)}); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[Word]bool{}
	for {
		pkt, ok := n.TryRecv(1)
		if !ok {
			break
		}
		if seen[pkt.Head] {
			t.Fatalf("duplicate delivery of %d", pkt.Head)
		}
		seen[pkt.Head] = true
	}
	if len(seen) != p {
		t.Errorf("delivered %d distinct packets, want %d", len(seen), p)
	}
}

func TestCM5WindowShuffleDeterministic(t *testing.T) {
	run := func() []Word {
		n := MustCM5Net(CM5Config{Nodes: 2, Reorder: WindowShuffle(8, 7)})
		for i := 0; i < 20; i++ {
			if err := n.Inject(Packet{Src: 0, Dst: 1, Head: Word(i)}); err != nil {
				t.Fatal(err)
			}
		}
		var got []Word
		for {
			pkt, ok := n.TryRecv(1)
			if !ok {
				break
			}
			got = append(got, pkt.Head)
		}
		return got
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic delivery at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestCM5FiniteBufferingBackpressures(t *testing.T) {
	n := MustCM5Net(CM5Config{Nodes: 2, Capacity: 3})
	for i := 0; i < 3; i++ {
		if err := n.Inject(Packet{Src: 0, Dst: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Inject(Packet{Src: 0, Dst: 1}); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("4th inject = %v, want ErrBackpressure", err)
	}
	if n.Stats().Backpressure != 1 {
		t.Errorf("backpressure count = %d", n.Stats().Backpressure)
	}
	// Draining one makes room for one.
	if _, ok := n.TryRecv(1); !ok {
		t.Fatal("drain failed")
	}
	if err := n.Inject(Packet{Src: 0, Dst: 1}); err != nil {
		t.Fatalf("inject after drain = %v", err)
	}
	// A different destination is unaffected.
	if err := n.Inject(Packet{Src: 1, Dst: 0}); err != nil {
		t.Fatalf("other-destination inject = %v", err)
	}
}

func TestCM5CapacityCountsHeldPackets(t *testing.T) {
	// A packet held inside a reorderer still occupies destination
	// buffering.
	n := MustCM5Net(CM5Config{Nodes: 2, Capacity: 1, Reorder: PairSwap()})
	if err := n.Inject(Packet{Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	if err := n.Inject(Packet{Src: 0, Dst: 1}); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("inject over held packet = %v, want ErrBackpressure", err)
	}
}

func TestCM5FaultDropLosesPacketSilently(t *testing.T) {
	n := MustCM5Net(CM5Config{Nodes: 2, Faults: &EveryNth{N: 2, What: Drop}})
	for i := 0; i < 4; i++ {
		if err := n.Inject(Packet{Src: 0, Dst: 1, Head: Word(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []Word
	for {
		pkt, ok := n.TryRecv(1)
		if !ok {
			break
		}
		got = append(got, pkt.Head)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("delivered %v, want [0 2]", got)
	}
	st := n.Stats()
	if st.Dropped != 2 || st.Injected != 4 || st.Delivered != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCM5FaultCorruptIsDetectable(t *testing.T) {
	n := MustCM5Net(CM5Config{Nodes: 2, Faults: &EveryNth{N: 3, What: Corrupt}})
	for i := 0; i < 3; i++ {
		if err := n.Inject(Packet{Src: 0, Dst: 1, Head: Word(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var corrupt int
	for {
		pkt, ok := n.TryRecv(1)
		if !ok {
			break
		}
		if pkt.Corrupt {
			corrupt++
		}
	}
	if corrupt != 1 {
		t.Errorf("corrupt deliveries = %d, want 1", corrupt)
	}
	if n.Stats().CorruptSeen != 1 {
		t.Errorf("CorruptSeen = %d", n.Stats().CorruptSeen)
	}
}

func TestTargetSeqsFaultsOnlyOnce(t *testing.T) {
	plan := &TargetSeqs{Src: 0, Dst: 1, Seqs: map[uint64]Outcome{1: Drop}}
	n := MustCM5Net(CM5Config{Nodes: 2, Faults: plan})
	for i := 0; i < 3; i++ {
		if err := n.Inject(Packet{Src: 0, Dst: 1, Head: Word(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Flow seq 1 (the second packet) was dropped; a fresh injection gets
	// flow seq 3 and sails through.
	if err := n.Inject(Packet{Src: 0, Dst: 1, Head: 1}); err != nil {
		t.Fatal(err)
	}
	var got []Word
	for {
		pkt, ok := n.TryRecv(1)
		if !ok {
			break
		}
		got = append(got, pkt.Head)
	}
	want := []Word{0, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("delivered %v, want %v", got, want)
			break
		}
	}
	// Packets on other flows are never judged.
	plan2 := &TargetSeqs{Src: 0, Dst: 1, Seqs: map[uint64]Outcome{0: Drop}}
	if plan2.Judge(Packet{Src: 1, Dst: 0}) != Deliver {
		t.Error("TargetSeqs faulted a foreign flow")
	}
}

func TestSeededRateBounds(t *testing.T) {
	if NewSeededRate(-1, 1).rate != 0 {
		t.Error("negative rate not clamped")
	}
	if NewSeededRate(2, 1).rate != 1 {
		t.Error("rate > 1 not clamped")
	}
	plan := NewSeededRate(0.5, 99)
	outcomes := map[Outcome]int{}
	for i := 0; i < 1000; i++ {
		outcomes[plan.Judge(Packet{})]++
	}
	if outcomes[Deliver] == 0 || outcomes[Corrupt] == 0 || outcomes[Drop] == 0 {
		t.Errorf("rate 0.5 over 1000 packets should produce all outcomes: %v", outcomes)
	}
}

func TestEveryNthDisabled(t *testing.T) {
	plan := &EveryNth{N: 0, What: Drop}
	for i := 0; i < 5; i++ {
		if plan.Judge(Packet{}) != Deliver {
			t.Fatal("disabled plan faulted a packet")
		}
	}
}

func TestCM5PendingAndFlowSeq(t *testing.T) {
	n := MustCM5Net(CM5Config{Nodes: 2})
	for i := 0; i < 3; i++ {
		if err := n.Inject(Packet{Src: 0, Dst: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if n.Pending() != 3 {
		t.Errorf("Pending = %d, want 3", n.Pending())
	}
	p, _ := n.TryRecv(1)
	if p.FlowSeq() != 0 {
		t.Errorf("first FlowSeq = %d", p.FlowSeq())
	}
	p, _ = n.TryRecv(1)
	if p.FlowSeq() != 1 {
		t.Errorf("second FlowSeq = %d", p.FlowSeq())
	}
	if n.Pending() != 1 {
		t.Errorf("Pending after two receives = %d", n.Pending())
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Injected: 3, Delivered: 2}
	str := s.String()
	if !strings.Contains(str, "injected=3") || !strings.Contains(str, "delivered=2") {
		t.Errorf("Stats.String = %q", str)
	}
}
