package network

import "math/rand"

// Reorderer decides the delivery order of packets within one
// (source, destination) flow, modeling the arbitrary delivery order of
// multipath networks. Implementations are driven per flow: Push accepts the
// next injected packet and returns any packets that become deliverable (in
// delivery order); Flush releases anything still held when the flow goes
// idle.
type Reorderer interface {
	Push(p Packet) []Packet
	Flush() []Packet
}

// ReorderPolicy constructs a fresh Reorderer for each flow.
type ReorderPolicy func() Reorderer

// InOrder delivers every flow in injection order (a single-path network).
func InOrder() ReorderPolicy {
	return func() Reorderer { return inOrder{} }
}

type inOrder struct{}

func (inOrder) Push(p Packet) []Packet { return []Packet{p} }
func (inOrder) Flush() []Packet        { return nil }

// PairSwap delivers each consecutive pair of packets swapped
// (1, 0, 3, 2, ...), so exactly half of a flow's packets arrive out of
// order — the paper's Table 2 assumption for the indefinite-sequence
// protocol, made deterministic.
func PairSwap() ReorderPolicy {
	return func() Reorderer { return &pairSwap{} }
}

type pairSwap struct {
	held    *Packet
	hasHeld bool
}

func (s *pairSwap) Push(p Packet) []Packet {
	if !s.hasHeld {
		cp := p
		s.held = &cp
		s.hasHeld = true
		return nil
	}
	first := *s.held
	s.held, s.hasHeld = nil, false
	return []Packet{p, first}
}

func (s *pairSwap) Flush() []Packet {
	if !s.hasHeld {
		return nil
	}
	p := *s.held
	s.held, s.hasHeld = nil, false
	return []Packet{p}
}

// WindowShuffle holds up to window packets per flow and releases them in a
// seeded pseudo-random order, modeling adaptive routing whose path spread is
// bounded by the network diameter. The same seed always produces the same
// delivery order.
func WindowShuffle(window int, seed int64) ReorderPolicy {
	if window < 1 {
		window = 1
	}
	return func() Reorderer {
		return &windowShuffle{window: window, rng: rand.New(rand.NewSource(seed))}
	}
}

type windowShuffle struct {
	window int
	rng    *rand.Rand
	held   []Packet
}

func (s *windowShuffle) Push(p Packet) []Packet {
	s.held = append(s.held, p)
	if len(s.held) < s.window {
		return nil
	}
	return s.release()
}

func (s *windowShuffle) Flush() []Packet { return s.release() }

func (s *windowShuffle) release() []Packet {
	out := s.held
	s.held = nil
	s.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
