package network

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestCRDefaultsAndConfigErrors(t *testing.T) {
	if _, err := NewCRNet(CRConfig{Nodes: 0}); err == nil {
		t.Error("accepted zero nodes")
	}
	if _, err := NewCRNet(CRConfig{Nodes: 2, PacketWords: -3}); err == nil {
		t.Error("accepted negative packet size")
	}
	n := MustCRNet(CRConfig{Nodes: 2})
	if n.PacketWords() != 4 || n.Nodes() != 2 || n.Name() != "cr" {
		t.Errorf("identity wrong: %s nodes=%d pw=%d", n.Name(), n.Nodes(), n.PacketWords())
	}
}

func TestMustCRNetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustCRNet(CRConfig{})
}

func TestCRValidatesPackets(t *testing.T) {
	n := MustCRNet(CRConfig{Nodes: 2})
	if err := n.Inject(Packet{Src: 0, Dst: 9}); !errors.Is(err, ErrBadPacket) {
		t.Errorf("Inject bad dst = %v", err)
	}
}

// The central CR guarantee: delivery order within every flow equals
// injection order, for any interleaving of flows.
func TestCRPreservesOrderProperty(t *testing.T) {
	prop := func(plan []uint8) bool {
		const nodes = 4
		n := MustCRNet(CRConfig{Nodes: nodes})
		next := map[flowKey]Word{}
		for _, b := range plan {
			src := int(b) % nodes
			dst := int(b>>2) % nodes
			key := flowKey{src, dst}
			if err := n.Inject(Packet{Src: src, Dst: dst, Head: next[key]}); err != nil {
				return false
			}
			next[key]++
		}
		expect := map[flowKey]Word{}
		for node := 0; node < nodes; node++ {
			for {
				p, ok := n.TryRecv(node)
				if !ok {
					break
				}
				key := flowKey{p.Src, p.Dst}
				if p.Head != expect[key] {
					return false
				}
				expect[key]++
			}
		}
		// Everything injected must have been delivered.
		for key, sent := range next {
			if expect[key] != sent {
				return false
			}
		}
		return n.Pending() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCRHeaderRejection(t *testing.T) {
	n := MustCRNet(CRConfig{Nodes: 2})
	allow := false
	if err := n.SetAcceptor(1, func(p Packet) bool { return allow }); err != nil {
		t.Fatal(err)
	}
	err := n.Inject(Packet{Src: 0, Dst: 1, Head: 5})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("inject with refusing acceptor = %v, want ErrRejected", err)
	}
	if n.Stats().Rejected != 1 {
		t.Errorf("Rejected = %d", n.Stats().Rejected)
	}
	if _, ok := n.TryRecv(1); ok {
		t.Error("rejected packet was delivered")
	}
	// The sender retries later and the destination now has resources.
	allow = true
	if err := n.Inject(Packet{Src: 0, Dst: 1, Head: 5}); err != nil {
		t.Fatalf("retry = %v", err)
	}
	p, ok := n.TryRecv(1)
	if !ok || p.Head != 5 {
		t.Errorf("retried packet not delivered: %+v ok=%v", p, ok)
	}
	// Clearing the acceptor accepts everything.
	if err := n.SetAcceptor(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := n.Inject(Packet{Src: 0, Dst: 1}); err != nil {
		t.Errorf("inject with cleared acceptor = %v", err)
	}
}

func TestCRSetAcceptorBadNode(t *testing.T) {
	n := MustCRNet(CRConfig{Nodes: 2})
	if err := n.SetAcceptor(5, nil); err == nil {
		t.Error("SetAcceptor(5) accepted")
	}
}

func TestCRFiniteCapacityBackpressures(t *testing.T) {
	n := MustCRNet(CRConfig{Nodes: 2, Capacity: 2})
	for i := 0; i < 2; i++ {
		if err := n.Inject(Packet{Src: 0, Dst: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Inject(Packet{Src: 0, Dst: 1}); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("over-capacity inject = %v, want ErrBackpressure", err)
	}
}

func TestCRTransientFaultsAreInvisible(t *testing.T) {
	n := MustCRNet(CRConfig{
		Nodes:           2,
		TransientFaults: &EveryNth{N: 2, What: Drop},
	})
	for i := 0; i < 4; i++ {
		if err := n.Inject(Packet{Src: 0, Dst: 1, Head: Word(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []Word
	for {
		p, ok := n.TryRecv(1)
		if !ok {
			break
		}
		if p.Corrupt {
			t.Error("CR delivered a corrupt packet")
		}
		got = append(got, p.Head)
	}
	if len(got) != 4 {
		t.Fatalf("delivered %d packets, want all 4", len(got))
	}
	for i, w := range got {
		if w != Word(i) {
			t.Errorf("delivery %d = %d (order violated)", i, w)
		}
	}
	if n.Stats().HWRetries == 0 {
		t.Error("expected hardware retries to be counted")
	}
}

func TestCRTryRecvBadNode(t *testing.T) {
	n := MustCRNet(CRConfig{Nodes: 2})
	if _, ok := n.TryRecv(-1); ok {
		t.Error("TryRecv(-1) returned a packet")
	}
}

func TestCRPayloadIsolation(t *testing.T) {
	n := MustCRNet(CRConfig{Nodes: 2})
	buf := []Word{1, 2}
	if err := n.Inject(Packet{Src: 0, Dst: 1, Data: buf}); err != nil {
		t.Fatal(err)
	}
	buf[0] = 42
	p, _ := n.TryRecv(1)
	if p.Data[0] != 1 {
		t.Error("payload aliased the caller's buffer")
	}
}
