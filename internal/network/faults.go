package network

import "math/rand"

// Outcome is a fault plan's verdict for one packet.
type Outcome uint8

const (
	// Deliver passes the packet through unharmed.
	Deliver Outcome = iota
	// Corrupt delivers the packet with a failed CRC; the receiving NI
	// detects the error and discards it (the CM-5 detects but cannot
	// correct).
	Corrupt
	// Drop loses the packet entirely.
	Drop
)

// FaultPlan decides the fate of each injected packet. Implementations must
// be deterministic for a given construction so experiments are repeatable.
type FaultPlan interface {
	Judge(p Packet) Outcome
}

// NoFaults delivers everything.
type NoFaults struct{}

// Judge implements FaultPlan.
func (NoFaults) Judge(Packet) Outcome { return Deliver }

// EveryNth corrupts or drops every nth judged packet (1-based: the nth,
// 2nth, ... packets suffer the outcome). An n of zero or less disables it.
type EveryNth struct {
	N    int
	What Outcome
	seen int
}

// Judge implements FaultPlan.
func (e *EveryNth) Judge(Packet) Outcome {
	if e.N <= 0 {
		return Deliver
	}
	e.seen++
	if e.seen%e.N == 0 {
		return e.What
	}
	return Deliver
}

// SeededRate corrupts/drops packets at a fixed probability using a seeded
// generator, splitting faults evenly between corruption and loss.
type SeededRate struct {
	rate float64
	rng  *rand.Rand
}

// NewSeededRate returns a plan faulting packets with the given probability.
func NewSeededRate(rate float64, seed int64) *SeededRate {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &SeededRate{rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Judge implements FaultPlan.
func (s *SeededRate) Judge(Packet) Outcome {
	r := s.rng.Float64()
	switch {
	case r < s.rate/2:
		return Corrupt
	case r < s.rate:
		return Drop
	default:
		return Deliver
	}
}

// TargetSeqs faults specific per-flow sequence numbers of one flow,
// letting tests lose exactly the packets they mean to lose.
type TargetSeqs struct {
	Src, Dst int
	Seqs     map[uint64]Outcome
}

// Judge implements FaultPlan.
func (t *TargetSeqs) Judge(p Packet) Outcome {
	if p.Src != t.Src || p.Dst != t.Dst {
		return Deliver
	}
	if o, ok := t.Seqs[p.flow]; ok {
		delete(t.Seqs, p.flow) // a retransmission of the same data succeeds
		return o
	}
	return Deliver
}
