package network

import "testing"

// BenchmarkCM5InjectRecv measures the behavioral substrate's host-side
// cost per packet round (inject + receive).
func BenchmarkCM5InjectRecv(b *testing.B) {
	n := MustCM5Net(CM5Config{Nodes: 2})
	payload := []Word{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.Inject(Packet{Src: 0, Dst: 1, Data: payload}); err != nil {
			b.Fatal(err)
		}
		if _, ok := n.TryRecv(1); !ok {
			b.Fatal("lost packet")
		}
	}
}

// BenchmarkCM5PairSwap adds the deterministic reordering policy.
func BenchmarkCM5PairSwap(b *testing.B) {
	n := MustCM5Net(CM5Config{Nodes: 2, Reorder: PairSwap()})
	payload := []Word{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i += 2 {
		for j := 0; j < 2; j++ {
			if err := n.Inject(Packet{Src: 0, Dst: 1, Data: payload}); err != nil {
				b.Fatal(err)
			}
		}
		for j := 0; j < 2; j++ {
			if _, ok := n.TryRecv(1); !ok {
				b.Fatal("lost packet")
			}
		}
	}
}

// BenchmarkCRInjectRecv measures the in-order substrate.
func BenchmarkCRInjectRecv(b *testing.B) {
	n := MustCRNet(CRConfig{Nodes: 2})
	payload := []Word{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.Inject(Packet{Src: 0, Dst: 1, Data: payload}); err != nil {
			b.Fatal(err)
		}
		if _, ok := n.TryRecv(1); !ok {
			b.Fatal("lost packet")
		}
	}
}
