package network

import (
	"fmt"

	"msglayer/internal/obs"
)

// CRConfig configures a CRNet.
type CRConfig struct {
	// Nodes is the number of attached processing nodes (required).
	Nodes int
	// PacketWords is the payload capacity of a hardware packet.
	// Defaults to 4 (the paper assumes CM-5-like hardware with five-word
	// packets: one header word plus four data words).
	PacketWords int
	// Capacity bounds the packets buffered toward any one destination.
	// Zero means unbounded. Unlike the CM-5 model, exceeding it cannot
	// deadlock: Compressionless Routing kills and later retries blocked
	// worms, which the behavioral model surfaces as ErrBackpressure for
	// the sender to retry.
	Capacity int
	// TransientFaults optionally injects link faults. Compressionless
	// Routing recovers from them in hardware — the injecting sender
	// retries until the tail flit is accepted — so faults here never
	// surface to software; they only increment the HWRetries counter.
	TransientFaults FaultPlan
}

// Acceptor is a destination's resource check, consulted when a transfer's
// header packet begins to arrive. Returning false rejects the packet: the
// message path is torn down without the packet ever occupying destination
// resources (Compressionless Routing's deadlock-freedom independent of
// acceptance guarantees).
type Acceptor func(Packet) bool

// CRNet is the behavioral model of a Compressionless-Routing substrate:
// order-preserving, reliable at the packet level, with header rejection in
// place of software buffer preallocation.
type CRNet struct {
	cfg       CRConfig
	queues    [][]Packet
	acceptors []Acceptor
	flowSeq   map[flowKey]uint64
	stats     Stats
	obs       *obs.NetScope
}

// NewCRNet constructs the network.
func NewCRNet(cfg CRConfig) (*CRNet, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("network: CRNet needs >= 1 node, got %d", cfg.Nodes)
	}
	if cfg.PacketWords == 0 {
		cfg.PacketWords = 4
	}
	if cfg.PacketWords < 1 {
		return nil, fmt.Errorf("network: packet payload must be positive, got %d", cfg.PacketWords)
	}
	return &CRNet{
		cfg:       cfg,
		queues:    make([][]Packet, cfg.Nodes),
		acceptors: make([]Acceptor, cfg.Nodes),
		flowSeq:   make(map[flowKey]uint64),
	}, nil
}

// MustCRNet is NewCRNet that panics on bad configuration.
func MustCRNet(cfg CRConfig) *CRNet {
	n, err := NewCRNet(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// SetAcceptor installs (or clears, with nil) a destination's header
// acceptance check.
func (n *CRNet) SetAcceptor(node int, a Acceptor) error {
	if node < 0 || node >= n.cfg.Nodes {
		return fmt.Errorf("network: no node %d", node)
	}
	n.acceptors[node] = a
	return nil
}

// Name implements Network.
func (n *CRNet) Name() string { return "cr" }

// SetObserver implements obs.NetInstrumentable.
func (n *CRNet) SetObserver(s *obs.NetScope) { n.obs = s }

// QueueDepth implements obs.DepthProber: packets buffered toward a node.
func (n *CRNet) QueueDepth(node int) int {
	if node < 0 || node >= n.cfg.Nodes {
		return 0
	}
	return len(n.queues[node])
}

// Nodes implements Network.
func (n *CRNet) Nodes() int { return n.cfg.Nodes }

// PacketWords implements Network.
func (n *CRNet) PacketWords() int { return n.cfg.PacketWords }

// Inject implements Network. Injection succeeds only once the packet is
// guaranteed to arrive: the acceptance check models Compressionless
// Routing's property that a worm must begin draining at the destination
// before it has fully entered the network, and transient faults are retried
// by hardware before the tail-flit acknowledgement releases the sender.
func (n *CRNet) Inject(p Packet) error {
	if err := validate(p, n.cfg.Nodes, n.cfg.PacketWords); err != nil {
		return err
	}
	if a := n.acceptors[p.Dst]; a != nil && !a(p) {
		n.stats.Rejected++
		n.obs.Rejected(p.Dst)
		return ErrRejected
	}
	if n.cfg.Capacity > 0 && len(n.queues[p.Dst]) >= n.cfg.Capacity {
		n.stats.Backpressure++
		n.obs.Backpressure(p.Dst)
		return ErrBackpressure
	}
	if n.cfg.TransientFaults != nil {
		// Hardware keeps retrying the worm until its tail is accepted;
		// each non-Deliver verdict is one transparent retry. The bound
		// guards against a pathological always-fault plan.
		before := n.stats.HWRetries
		for retries := 0; n.cfg.TransientFaults.Judge(p) != Deliver && retries < 1024; retries++ {
			n.stats.HWRetries++
		}
		n.obs.HWRetries(n.stats.HWRetries - before)
	}

	key := flowKey{p.Src, p.Dst}
	p.flow = n.flowSeq[key]
	n.flowSeq[key]++
	p.Data = clonePayload(p.Data)
	n.stats.Injected++
	n.obs.Injected()
	n.queues[p.Dst] = append(n.queues[p.Dst], p)
	return nil
}

// TryRecv implements Network.
func (n *CRNet) TryRecv(node int) (Packet, bool) {
	if node < 0 || node >= n.cfg.Nodes || len(n.queues[node]) == 0 {
		return Packet{}, false
	}
	p := n.queues[node][0]
	n.queues[node] = n.queues[node][1:]
	n.stats.Delivered++
	n.obs.Delivered()
	return p, true
}

// Pending implements Network.
func (n *CRNet) Pending() int {
	total := 0
	for _, q := range n.queues {
		total += len(q)
	}
	return total
}

// Stats implements Network.
func (n *CRNet) Stats() Stats { return n.stats }

var _ Network = (*CRNet)(nil)
