package msglayer

import (
	"strings"
	"testing"
)

// The doc-comment quick start, as a test: an active message crosses the
// machine and the Table 1 costs appear on the gauges.
func TestQuickStart(t *testing.T) {
	m, err := NewCM5Machine(CM5Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	m.Node(0).SetRole(RoleSource)
	m.Node(1).SetRole(RoleDestination)

	ep0 := NewEndpoint(m.Node(0))
	ep1 := NewEndpoint(m.Node(1))
	var got []Word
	ep1.Register(1, func(src int, args []Word) { got = args })

	if err := ep0.AM4(1, 1, 10, 20, 30, 40); err != nil {
		t.Fatal(err)
	}
	if ok, err := ep1.PollSingle(); err != nil || !ok {
		t.Fatalf("PollSingle = %v, %v", ok, err)
	}
	if len(got) != 4 || got[0] != 10 {
		t.Errorf("handler saw %v", got)
	}

	out := RenderTable1(m.TotalGauge())
	if !strings.Contains(out, "20") || !strings.Contains(out, "27") {
		t.Errorf("Table 1 render:\n%s", out)
	}
}

// A full finite transfer through the public API on both substrates.
func TestPublicFiniteTransferBothSubstrates(t *testing.T) {
	data := make([]Word, 64)
	for i := range data {
		data[i] = Word(i)
	}

	// CM-5 substrate.
	m, err := NewCM5Machine(CM5Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	m.Node(0).SetRole(RoleSource)
	m.Node(1).SetRole(RoleDestination)
	src := NewFinite(NewEndpoint(m.Node(0)))
	dst := NewFinite(NewEndpoint(m.Node(1)))
	var cm5Got []Word
	dst.OnReceive = func(_ int, buf []Word) { cm5Got = buf }
	tr, err := src.Start(1, data)
	if err != nil {
		t.Fatal(err)
	}
	err = Run(100000,
		StepFunc(func() (bool, error) { return tr.Done(), src.Pump() }),
		StepFunc(func() (bool, error) { return tr.Done(), dst.Pump() }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm5Got) != 64 || cm5Got[63] != 63 {
		t.Errorf("CM-5 transfer corrupted")
	}

	// CR substrate.
	crm, err := NewCRMachine(CROptions{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	crm.Node(0).SetRole(RoleSource)
	crm.Node(1).SetRole(RoleDestination)
	crSrc, err := NewCRFinite(NewEndpoint(crm.Node(0)), crm, CRFiniteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var crGot []Word
	crDst, err := NewCRFinite(NewEndpoint(crm.Node(1)), crm, CRFiniteConfig{
		OnReceive: func(_ int, buf []Word) { crGot = buf },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctr, err := crSrc.Start(1, data)
	if err != nil {
		t.Fatal(err)
	}
	err = Run(100000,
		StepFunc(func() (bool, error) { return ctr.Done() && crGot != nil, crSrc.Pump() }),
		StepFunc(func() (bool, error) { return ctr.Done() && crGot != nil, crDst.Pump() }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(crGot) != 64 {
		t.Errorf("CR transfer corrupted")
	}

	// The headline claim through the public API: CR cost < CMAM cost, and
	// CR charges nothing to the overhead features.
	cmCost := m.TotalGauge().Total().Total()
	crCost := crm.TotalGauge().Total().Total()
	if crCost >= cmCost {
		t.Errorf("CR cost %d not below CMAM cost %d", crCost, cmCost)
	}
	crCells := MergeRoles(crm.Node(0).Gauge, crm.Node(1).Gauge)
	if !crCells[RoleSource][InOrder].IsZero() || !crCells[RoleDestination][FaultTol].IsZero() {
		t.Error("CR charged overhead features")
	}
}

func TestPublicStreams(t *testing.T) {
	m, err := NewCM5Machine(CM5Options{Nodes: 2, HalfOutOfOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	m.Node(0).SetRole(RoleSource)
	m.Node(1).SetRole(RoleDestination)
	src, err := NewStream(NewEndpoint(m.Node(0)), StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var words []Word
	dst, err := NewStream(NewEndpoint(m.Node(1)), StreamConfig{
		OnDeliver: func(_ int, _ uint8, data []Word) { words = append(words, data...) },
	})
	if err != nil {
		t.Fatal(err)
	}
	c := src.Open(1, 0)
	for i := 0; i < 16; i++ {
		if err := c.Send(Word(i)); err != nil {
			t.Fatal(err)
		}
	}
	err = Run(100000,
		StepFunc(func() (bool, error) { return c.Idle(), src.Pump() }),
		StepFunc(func() (bool, error) { return c.Idle(), dst.Pump() }),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range words {
		if w != Word(i) {
			t.Fatalf("word %d = %d (order violated)", i, w)
		}
	}
}

func TestPublicTraces(t *testing.T) {
	for name, run := range map[string]func() (Trace, error){
		"fig3": func() (Trace, error) { return TraceFigure3(8) },
		"fig4": func() (Trace, error) { return TraceFigure4(2) },
		"fig5": func() (Trace, error) { return TraceFigure5(8) },
		"fig7": func() (Trace, error) { return TraceFigure7(2) },
	} {
		tr, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tr.Events) == 0 || tr.String() == "" {
			t.Errorf("%s: empty trace", name)
		}
	}
}

func TestPublicFlitNet(t *testing.T) {
	topo, err := NewFatTree(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := NewFlitNet(FlitConfig{Topology: topo, Mode: RouteCR})
	if err != nil {
		t.Fatal(err)
	}
	if err := fn.Inject(Packet{Src: 0, Dst: 3, Data: []Word{7}}); err != nil {
		t.Fatal(err)
	}
	if !fn.TickUntilQuiet(10000) {
		t.Fatal("flit net did not drain")
	}
	p, ok := fn.TryRecv(3)
	if !ok || p.Data[0] != 7 {
		t.Errorf("flit delivery = %+v, %v", p, ok)
	}

	if _, err := NewMesh(3, 3); err != nil {
		t.Fatal(err)
	}
}

func TestFaultPlanConstructors(t *testing.T) {
	if NewEveryNthDropPlan(2) == nil || NewEveryNthCorruptPlan(2) == nil ||
		NewSeededFaultPlan(0.1, 1) == nil {
		t.Fatal("nil plan")
	}
	m, err := NewCM5Machine(CM5Options{Nodes: 2, Faults: NewEveryNthDropPlan(1)})
	if err != nil {
		t.Fatal(err)
	}
	ep := NewEndpoint(m.Node(0))
	if err := ep.AM4(1, 1, 0); err != nil {
		t.Fatal(err)
	}
	dst := NewEndpoint(m.Node(1))
	dst.Register(1, func(int, []Word) { t.Error("dropped packet arrived") })
	if ok, _ := dst.PollSingle(); ok {
		t.Error("PollSingle returned a dropped packet")
	}
}

func TestScheduleConstructor(t *testing.T) {
	s, err := NewPaperSchedule(8)
	if err != nil {
		t.Fatal(err)
	}
	if s.PacketWords != 8 {
		t.Errorf("PacketWords = %d", s.PacketWords)
	}
	if _, err := NewPaperSchedule(3); err == nil {
		t.Error("accepted odd packet size")
	}
	if UnitModel.Cost(Vec{Reg: 1, Mem: 1, Dev: 1}) != 3 {
		t.Error("unit model wrong")
	}
	if CM5Model.Cost(Vec{Dev: 1}) != 5 {
		t.Error("cm5 model wrong")
	}
}

func TestRenderHelpers(t *testing.T) {
	m, err := NewCM5Machine(CM5Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	cells := BreakdownOf(m.TotalGauge())
	if out := RenderFeatureTable("empty", cells); !strings.Contains(out, "Total") {
		t.Errorf("feature table:\n%s", out)
	}
	if out := RenderCategoryTable("empty", cells); !strings.Contains(out, "reg") {
		t.Errorf("category table:\n%s", out)
	}
}

func TestPublicCollectives(t *testing.T) {
	const nodes = 4
	m, err := NewCM5Machine(CM5Options{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	comms := make([]*Comm, nodes)
	for i := 0; i < nodes; i++ {
		c, err := NewComm(NewEndpoint(m.Node(i)), nodes)
		if err != nil {
			t.Fatal(err)
		}
		comms[i] = c
	}
	preds := make([]func() (Word, bool), nodes)
	for i, c := range comms {
		p, err := c.ReduceBegin(Word(i+1), ReduceSum)
		if err != nil {
			t.Fatal(err)
		}
		preds[i] = p
	}
	done := func() bool {
		for _, p := range preds {
			if _, ok := p(); !ok {
				return false
			}
		}
		return true
	}
	steppers := make([]Stepper, nodes)
	for i, c := range comms {
		steppers[i] = c.Stepper(done)
	}
	if err := Run(10000, steppers...); err != nil {
		t.Fatal(err)
	}
	for i, p := range preds {
		if got, _ := p(); got != 10 {
			t.Errorf("rank %d reduce = %d, want 10", i, got)
		}
	}
}

func TestPublicRPCOverDualNetworks(t *testing.T) {
	m, err := NewDualCM5Machine(CM5Options{Nodes: 2, Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	server := NewRPC(NewEndpoint(m.Node(1)), func(src int, args []Word) []Word {
		return []Word{args[0] + 1}
	})
	client := NewRPC(NewEndpoint(m.Node(0)), nil)
	call, err := client.Request(1, 41)
	if err != nil {
		t.Fatal(err)
	}
	err = Run(1000,
		StepFunc(func() (bool, error) { return call.Done(), client.Pump() }),
		StepFunc(func() (bool, error) { return call.Done(), server.Pump() }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := call.Reply(); len(got) != 1 || got[0] != 42 {
		t.Errorf("reply = %v", got)
	}
	if m.Node(0).ReplyNI == nil {
		t.Error("dual machine missing reply NI")
	}
}

func TestPublicControlNetwork(t *testing.T) {
	const nodes = 4
	m, err := NewCM5Machine(CM5Options{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	cn, err := NewControlNet(nodes, 4)
	if err != nil {
		t.Fatal(err)
	}
	comms := make([]*Comm, nodes)
	preds := make([]func() (Word, bool), nodes)
	for i := 0; i < nodes; i++ {
		c, err := NewComm(NewEndpoint(m.Node(i)), nodes)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AttachControlNetwork(cn); err != nil {
			t.Fatal(err)
		}
		comms[i] = c
		p, err := c.HWReduceBegin(Word(i+1), CombineMax)
		if err != nil {
			t.Fatal(err)
		}
		preds[i] = p
	}
	done := func() bool {
		for _, p := range preds {
			if _, ok := p(); !ok {
				return false
			}
		}
		return true
	}
	steppers := make([]Stepper, nodes)
	for i, c := range comms {
		steppers[i] = c.Stepper(done)
	}
	if err := Run(10000, steppers...); err != nil {
		t.Fatal(err)
	}
	for i, p := range preds {
		if got, _ := p(); got != nodes {
			t.Errorf("rank %d max = %d, want %d", i, got, nodes)
		}
	}
	if _, err := NewControlNet(0, 0); err == nil {
		t.Error("accepted bad control net config")
	}
}

func TestPublicAnalyticModel(t *testing.T) {
	s, err := NewPaperSchedule(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateModel(ModelIndefiniteCMAM, s, ModelParams{
		MessageWords: 1024, OutOfOrder: 128, AckGroup: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Total().Total(); got != 29965 {
		t.Errorf("model total = %d, want 29965", got)
	}
	pts, err := OverheadSweep(ModelFiniteCMAM, 1024, []int{4, 8})
	if err != nil || len(pts) != 2 {
		t.Fatalf("sweep = %v, %v", pts, err)
	}
	words, ok := CrossoverWords(ModelFiniteCMAM, ModelIndefiniteCMAM, s, 1024)
	if !ok || words != 16 {
		t.Errorf("crossover = %d, %v; want 16", words, ok)
	}
}
