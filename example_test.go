package msglayer_test

import (
	"fmt"
	"log"

	"msglayer"
)

// The cheapest communication CMAM offers: a single-packet active message,
// costing exactly the paper's Table 1 numbers — and carrying none of the
// user-level guarantees.
func Example_singlePacket() {
	m, err := msglayer.NewCM5Machine(msglayer.CM5Options{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	m.Node(0).SetRole(msglayer.RoleSource)
	m.Node(1).SetRole(msglayer.RoleDestination)

	sender := msglayer.NewEndpoint(m.Node(0))
	receiver := msglayer.NewEndpoint(m.Node(1))
	receiver.Register(1, func(src int, args []msglayer.Word) {
		fmt.Printf("handler: %d words from node %d\n", len(args), src)
	})

	if err := sender.AM4(1, 1, 10, 20, 30, 40); err != nil {
		log.Fatal(err)
	}
	if _, err := receiver.PollSingle(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("source: %d instructions, destination: %d instructions\n",
		m.Node(0).Gauge.RoleTotal(msglayer.RoleSource).Total(),
		m.Node(1).Gauge.RoleTotal(msglayer.RoleDestination).Total())
	// Output:
	// handler: 4 words from node 0
	// source: 20 instructions, destination: 27 instructions
}

// A reliable memory-to-memory transfer over the CM-5-like substrate pays
// for buffer management, in-order delivery, and fault tolerance on top of
// the base data movement — Table 2's finite-sequence column.
func Example_finiteTransfer() {
	m, err := msglayer.NewCM5Machine(msglayer.CM5Options{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	m.Node(0).SetRole(msglayer.RoleSource)
	m.Node(1).SetRole(msglayer.RoleDestination)

	src := msglayer.NewFinite(msglayer.NewEndpoint(m.Node(0)))
	dst := msglayer.NewFinite(msglayer.NewEndpoint(m.Node(1)))
	var received []msglayer.Word
	dst.OnReceive = func(_ int, buf []msglayer.Word) { received = buf }

	data := make([]msglayer.Word, 16)
	tr, err := src.Start(1, data)
	if err != nil {
		log.Fatal(err)
	}
	err = msglayer.Run(1000,
		msglayer.StepFunc(func() (bool, error) { return tr.Done(), src.Pump() }),
		msglayer.StepFunc(func() (bool, error) { return tr.Done(), dst.Pump() }),
	)
	if err != nil {
		log.Fatal(err)
	}

	total := m.TotalGauge()
	fmt.Printf("received %d words for %d instructions\n", len(received), total.Total().Total())
	fmt.Printf("of which buffer management: %d, fault tolerance: %d\n",
		total.FeatureTotal(msglayer.BufferMgmt).Total(),
		total.FeatureTotal(msglayer.FaultTol).Total())
	// Output:
	// received 16 words for 397 instructions
	// of which buffer management: 148, fault tolerance: 47
}

// The same transfer over a Compressionless-Routing substrate: ordering,
// flow control, and reliability are hardware services, so the software
// keeps only the base cost (plus a pointer store) — the paper's Section 4.
func Example_compressionlessRouting() {
	m, err := msglayer.NewCRMachine(msglayer.CROptions{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	m.Node(0).SetRole(msglayer.RoleSource)
	m.Node(1).SetRole(msglayer.RoleDestination)

	src, err := msglayer.NewCRFinite(msglayer.NewEndpoint(m.Node(0)), m, msglayer.CRFiniteConfig{})
	if err != nil {
		log.Fatal(err)
	}
	var received []msglayer.Word
	dst, err := msglayer.NewCRFinite(msglayer.NewEndpoint(m.Node(1)), m, msglayer.CRFiniteConfig{
		OnReceive: func(_ int, buf []msglayer.Word) { received = buf },
	})
	if err != nil {
		log.Fatal(err)
	}

	tr, err := src.Start(1, make([]msglayer.Word, 16))
	if err != nil {
		log.Fatal(err)
	}
	done := func() bool { return tr.Done() && received != nil }
	err = msglayer.Run(1000,
		msglayer.StepFunc(func() (bool, error) { return done(), src.Pump() }),
		msglayer.StepFunc(func() (bool, error) { return done(), dst.Pump() }),
	)
	if err != nil {
		log.Fatal(err)
	}

	total := m.TotalGauge()
	fmt.Printf("received %d words for %d instructions\n", len(received), total.Total().Total())
	fmt.Printf("in-order delivery software: %d, fault tolerance software: %d\n",
		total.FeatureTotal(msglayer.InOrder).Total(),
		total.FeatureTotal(msglayer.FaultTol).Total())
	// Output:
	// received 16 words for 187 instructions
	// in-order delivery software: 0, fault tolerance software: 0
}

// The analytic model answers sizing questions without running the
// simulator: here, the overhead fraction of a 1024-word stream at the
// paper's configuration.
func Example_analyticModel() {
	s, err := msglayer.NewPaperSchedule(4)
	if err != nil {
		log.Fatal(err)
	}
	b, err := msglayer.EvaluateModel(msglayer.ModelIndefiniteCMAM, s, msglayer.ModelParams{
		MessageWords: 1024,
		OutOfOrder:   128, // half of the 256 packets
		AckGroup:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total %d instructions, %.0f%% messaging-layer overhead\n",
		b.Total().Total(), 100*b.Overhead())
	// Output:
	// total 29965 instructions, 71% messaging-layer overhead
}
