package main

import (
	"strings"
	"testing"
)

// TestFlagValidationTable: explicitly-set non-positive pool sizes error out
// with a clear message instead of silently falling back to auto-sizing.
func TestFlagValidationTable(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"zero parallel", []string{"-parallel", "0"}},
		{"negative parallel", []string{"-parallel", "-2"}},
		{"zero shards", []string{"-shards", "0"}},
		{"negative shards", []string{"-shards", "-1"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errOut strings.Builder
			if code := run(c.args, &out, &errOut); code == 0 {
				t.Fatal("accepted non-positive pool size")
			}
			if !strings.Contains(errOut.String(), "must be a positive count") {
				t.Fatalf("unclear message: %q", errOut.String())
			}
		})
	}
}

// TestRunTwinColumns: -twin appends the analytic twin's predicted latency
// and error per mode, and at knot loads on the calibration configuration
// the prediction is exact.
func TestRunTwinColumns(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-twin", "-loads", "0.05", "-cycles", "800"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"deterministic twin-lat", "adaptive twin-err%", "cr twin-lat"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// Load 0.05 is a committed knot and this is the calibration config, so
	// every twin-err% value on the row must render as exactly zero.
	if strings.Count(s, "0.0000") < 3 {
		t.Errorf("knot-load twin errors not zero:\n%s", s)
	}
	var csvOut strings.Builder
	if code := run([]string{"-twin", "-csv", "-loads", "0.05", "-cycles", "800"}, &csvOut, &errOut); code != 0 {
		t.Fatalf("csv exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(csvOut.String(), "deterministic twin-err%") {
		t.Errorf("CSV missing twin column:\n%s", csvOut.String())
	}
}
