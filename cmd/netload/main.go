// Command netload runs the classic interconnection-network evaluation —
// offered load versus delivered throughput and latency — on the flit-level
// wormhole simulator, for deterministic, adaptive, and Compressionless
// routing. It quantifies the hardware half of the paper's Section 5
// trade-off: adaptive multipath improves the network's own numbers, while
// (as msgbench's ablations show) its out-of-order delivery costs the
// messaging layer instructions.
//
// Usage:
//
//	netload                            # fat tree 4-ary 2-tree, all modes
//	netload -topology mesh -w 4 -h 4   # 4x4 mesh
//	netload -loads 0.05,0.1,0.2        # custom offered loads (pkts/node/cycle)
//	netload -cycles 4000 -csv
//	netload -parallel 8                # fan the load/mode grid over 8 workers
//	netload -shards 4                  # shard each point's engine across 4 workers
//	netload -metrics m.txt             # dump flit-level metrics ("-" = stdout)
//	netload -trace-out t.json          # Chrome trace with one span per point
//	netload -timeline-out tl.json      # windowed metrics timeline per point (.csv for CSV)
//	netload -cpuprofile cpu.out        # pprof CPU profile of the sweep
//	netload -memprofile mem.out        # pprof allocation profile at exit
//	netload -dense                     # dense reference engine (baseline)
//	netload -critpath cp.txt           # per-worm critical-path attribution ("-" = stdout)
//	netload -slo rules.yaml            # evaluate SLO rules per point; exit 3 on violation
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"msglayer/internal/critpath"
	"msglayer/internal/flitnet"
	"msglayer/internal/network"
	"msglayer/internal/obs"
	"msglayer/internal/obs/diff"
	"msglayer/internal/obs/monitor"
	"msglayer/internal/obs/monitor/blame"
	"msglayer/internal/obs/serve"
	"msglayer/internal/obs/timeline"
	"msglayer/internal/parsweep"
	"msglayer/internal/prof"
	"msglayer/internal/report"
	"msglayer/internal/topology"
	"msglayer/internal/twin"
	"msglayer/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; factored out of main for testing.
func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("netload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	topoArg := fs.String("topology", "fattree", "fattree or mesh")
	k := fs.Int("k", 4, "fat tree arity")
	levels := fs.Int("levels", 2, "fat tree levels")
	w := fs.Int("w", 4, "mesh width")
	h := fs.Int("h", 4, "mesh height")
	loadsArg := fs.String("loads", "0.02,0.05,0.1,0.2,0.3", "offered loads, packets/node/cycle")
	cycles := fs.Int("cycles", 2000, "measurement cycles per point")
	seed := fs.Int64("seed", 1, "traffic seed")
	csvOut := fs.Bool("csv", false, "emit CSV")
	vcs := fs.Int("vc", 1, "virtual channels (adaptive mesh needs >= 2)")
	patternArg := fs.String("pattern", "uniform",
		"traffic pattern: uniform, hotspot[:node:permille], transpose, bitcomplement, neighbor")
	parallel := fs.Int("parallel", 0, "worker goroutines for the sweep (0 = GOMAXPROCS, 1 = serial)")
	shardsFlag := fs.Int("shards", 0,
		"engine shards per simulation point (0 = auto: GOMAXPROCS split across the -parallel workers, which take precedence; 1 = serial engine; results are byte-identical at any value)")
	metricsOut := fs.String("metrics", "", "dump flit-level metrics to a file (\"-\" = stdout)")
	traceOut := fs.String("trace-out", "", "dump a Chrome trace-event JSON, one span per measure point (\"-\" = stdout)")
	serveAddr := fs.String("serve", "",
		"serve live observability on this address (/metrics, /snapshot, /trace, /debug/pprof/) during the sweep, then until interrupted; SIGINT shuts down cleanly")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
	memProfile := fs.String("memprofile", "", "write a pprof allocation profile to this file at exit")
	dense := fs.Bool("dense", false,
		"use the retained dense reference engine (scan every lane every cycle) instead of the event-driven scheduler; results are byte-identical, only speed differs")
	critpathOut := fs.String("critpath", "",
		"trace every worm's transit and write a per-message critical-path attribution report (\"-\" = stdout); reconciled exactly against per-point counters")
	timelineOut := fs.String("timeline-out", "",
		"sample every point's metrics into simulated-cycle windows and write the timelines (\"-\" = stdout; a .csv suffix selects CSV, otherwise JSON); adds a per-phase analysis to the text report")
	timelineInterval := fs.Int("timeline-interval", 100, "timeline window width in simulated cycles")
	twinCols := fs.Bool("twin", false,
		"append the analytic twin's closed-form predicted latency and its error vs the measured value per mode (twin-lat and twin-err% columns; the twin is calibrated on uniform traffic)")
	baselineOut := fs.String("baseline", "",
		"emit the paper's baseline-vs-CR comparison (Figure 6) as an obsdiff report: per-load deterministic-routing points diffed against their CR points, link by link (\"-\" = stdout; .json/.csv suffixes select the format, otherwise text)")
	sloRules := fs.String("slo", "",
		"evaluate SLO rules (JSON/YAML file, or \"canonical\") against every point's windowed timeline and exit 3 if any alert fired; samples each point like -timeline-out")
	sloOut := fs.String("slo-out", "-",
		"SLO alert report destination (\"-\" = stdout; .json/.csv suffixes select the format, otherwise text)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "netload: offered load vs throughput/latency on the flit simulator")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := parsweep.ValidatePositiveFlags(fs, "parallel", "shards"); err != nil {
		fmt.Fprintln(stderr, "netload:", err)
		return 1
	}

	loads, err := parseLoads(*loadsArg)
	if err != nil {
		fmt.Fprintln(stderr, "netload:", err)
		return 1
	}
	pattern, err := workload.ByName(*patternArg)
	if err != nil {
		fmt.Fprintln(stderr, "netload:", err)
		return 1
	}
	// Rules load before the sweep so a bad rules file fails fast, not after
	// minutes of simulation.
	var rules *monitor.RuleSet
	if *sloRules != "" {
		if rules, err = monitor.LoadRules(*sloRules); err != nil {
			fmt.Fprintln(stderr, "netload:", err)
			return 1
		}
	}
	// Profiles cover the whole run and finalize on every exit path; a
	// profile that cannot be written is reported and removed, never left
	// truncated (same contract as -metrics/-trace-out).
	if *cpuProfile != "" {
		stop, err := prof.StartCPU(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "netload:", err)
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(stderr, "netload:", err)
				code = 1
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			if err := prof.WriteHeap(*memProfile); err != nil {
				fmt.Fprintln(stderr, "netload:", err)
				code = 1
			}
		}()
	}
	mkTopo := func() (topology.Topology, error) {
		switch *topoArg {
		case "fattree":
			return topology.NewFatTree(*k, *levels)
		case "mesh":
			return topology.NewMesh(*w, *h)
		default:
			return nil, fmt.Errorf("unknown topology %q", *topoArg)
		}
	}

	// Intra-run sharding composes with the grid fan-out: the product of
	// workers and shards stays within GOMAXPROCS, with the fan-out (which
	// parallelizes whole points, barrier-free) taking precedence. A shard
	// count beyond the topology's router count cannot be used — the engine
	// would clamp it anyway — so it is clamped here, with a warning rather
	// than an error: the results are byte-identical at any shard count.
	workers := parsweep.Workers(*parallel)
	shards := parsweep.Shards(*shardsFlag, workers)
	if topo, err := mkTopo(); err == nil {
		if r := topo.NumRouters(); shards > r {
			fmt.Fprintf(stderr, "netload: warning: -shards %d exceeds the %d routers of the %s topology; clamped to %d\n",
				shards, r, *topoArg, r)
			shards = r
		}
	}

	modes := []flitnet.Mode{flitnet.Deterministic, flitnet.Adaptive, flitnet.CR}
	var names []string
	for _, m := range modes {
		names = append(names, m.String()+" thru", m.String()+" lat")
		if *twinCols {
			names = append(names, m.String()+" twin-lat", m.String()+" twin-err%")
		}
	}
	// twinRegime maps a routing mode onto the twin's regime key for the
	// configured topology shape; evaluated per report row under -twin.
	twinRegime := func(mode flitnet.Mode) twin.Regime {
		r := twin.Regime{Topology: *topoArg, Mode: mode, VCs: *vcs}
		if *topoArg == "mesh" {
			r.A, r.B = *w, *h
		} else {
			r.A, r.B = *k, *levels
		}
		return r
	}

	var hub *obs.Hub
	if *metricsOut != "" || *traceOut != "" || *serveAddr != "" {
		hub = obs.NewHub()
	}

	// With -serve, live endpoints answer throughout the sweep and SIGINT
	// aborts the remaining points and shuts the server down cleanly.
	ctx := context.Background()
	var srv *serve.Server
	if *serveAddr != "" {
		srv = serve.New(hub)
		if err := srv.Start(*serveAddr); err != nil {
			fmt.Fprintln(stderr, "netload:", err)
			return 1
		}
		var cancel context.CancelFunc
		ctx, cancel = signal.NotifyContext(ctx, os.Interrupt)
		defer cancel()
		defer func() {
			sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer scancel()
			if err := srv.Shutdown(sctx); err != nil {
				fmt.Fprintln(stderr, "netload: shutdown:", err)
			}
		}()
		fmt.Fprintf(stderr, "netload: observability on http://%s (SIGINT to stop)\n", srv.Addr())
	}
	// sync routes hub mutations through the server's lock when serving.
	sync := func(fn func()) {
		if srv != nil {
			srv.Sync(fn)
		} else {
			fn()
		}
	}

	// Each (load, mode) point is an independent deterministic run — fresh
	// topology, network, and generator, same seed — so the grid fans across
	// a worker pool. Every job writes only its own slot; the hub and the
	// report consume the slots in input order afterwards, which makes the
	// output byte-identical at any worker count (-parallel 1 is the serial
	// loop this replaces).
	type pointResult struct {
		thru, lat float64
		st        flitnet.Stats
		idle      uint64
		hub       *obs.Hub           // per-point span-traced hub, -critpath only
		tl        *timeline.Timeline // per-point windowed timeline, -timeline-out only
		metrics   []obs.JSONMetric   // per-point registry export, -baseline only
	}
	if *timelineInterval < 1 {
		fmt.Fprintln(stderr, "netload: -timeline-interval must be >= 1")
		return 1
	}
	jobs := len(loads) * len(modes)
	results := make([]pointResult, jobs)
	prefix, err := parsweep.RunCtx(ctx, workers, jobs, func(i int) error {
		load, mode := loads[i/len(modes)], modes[i%len(modes)]
		topo, err := mkTopo()
		if err != nil {
			return err
		}
		// With -critpath or -timeline-out each point observes itself into
		// its own hub, so the grid still fans across workers; reports merge
		// in input order and stay byte-identical at any worker count.
		var pointHub *obs.Hub
		var scope *obs.FlitScope
		if *critpathOut != "" || *timelineOut != "" || *baselineOut != "" || *sloRules != "" {
			pointHub = obs.NewHub()
			scope = pointHub.FlitScope()
		}
		var sampler *timeline.Sampler
		if *timelineOut != "" || *sloRules != "" {
			sampler = timeline.New(pointHub.Metrics, timeline.Config{Interval: uint64(*timelineInterval)})
		}
		thru, lat, st, idle, err := measure(topo, mode, *vcs, pattern, load, *cycles, *seed, *dense, shards, scope, sampler)
		if err != nil {
			return err
		}
		res := pointResult{thru: thru, lat: lat, st: st, idle: idle}
		if *critpathOut != "" {
			res.hub = pointHub
		}
		if *baselineOut != "" {
			res.metrics = pointHub.Metrics.JSONMetrics()
		}
		if sampler != nil {
			// Every window's deltas must sum exactly to the point's final
			// registry totals; a sampler that cannot account for itself is
			// a bug, not a report.
			if err := sampler.Reconcile(); err != nil {
				return fmt.Errorf("%s load %.2f: timeline reconciliation: %w", mode, load, err)
			}
			res.tl = sampler.Snapshot()
		}
		results[i] = res
		return nil
	})
	if err != nil {
		fmt.Fprintln(stderr, "netload:", err)
		return 1
	}
	if prefix < jobs {
		fmt.Fprintln(stderr, "netload: interrupted, reporting completed points")
	}
	var points []report.SeriesPoint
	var idleTotal uint64
	for li := 0; li < prefix/len(modes); li++ {
		load := loads[li]
		values := make([]float64, 0, 2*len(modes))
		for mi, mode := range modes {
			res := results[li*len(modes)+mi]
			if hub != nil {
				sync(func() { recordPoint(hub, mode, load, res.st, res.idle) })
			}
			idleTotal += res.idle
			values = append(values, res.thru, res.lat)
			if *twinCols {
				pred, err := (twin.NetPoint{Regime: twinRegime(mode), Load: load, Cycles: *cycles}).PredictNet()
				if err != nil {
					fmt.Fprintln(stderr, "netload: twin:", err)
					return 1
				}
				errPct := 0.0
				if res.lat != 0 {
					errPct = (pred.MeanLatency - res.lat) / res.lat * 100
				}
				values = append(values, pred.MeanLatency, errPct)
			}
		}
		points = append(points, report.SeriesPoint{
			X:      int(load * 1000), // permille for the integer axis
			Values: values,
		})
	}

	if *critpathOut != "" {
		err := writeTo(*critpathOut, stdout, func(w io.Writer) error {
			for i := 0; i < prefix; i++ {
				res := results[i]
				if res.hub == nil {
					continue
				}
				if err := critpath.Reconcile(res.hub); err != nil {
					return fmt.Errorf("point %d (%s load %.2f): %w",
						i, modes[i%len(modes)], loads[i/len(modes)], err)
				}
				fmt.Fprintf(w, "== %s routing, load %.2f ==\n", modes[i%len(modes)], loads[i/len(modes)])
				if err := critpath.WriteText(w, critpath.Analyze(res.hub.Trace.Events())); err != nil {
					return err
				}
				fmt.Fprintln(w)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(stderr, "netload:", err)
			return 1
		}
	}

	type timelinePoint struct {
		Mode         string             `json:"mode"`
		LoadPermille int                `json:"load_permille"`
		Timeline     *timeline.Timeline `json:"timeline"`
	}
	var tlPoints []timelinePoint
	if *timelineOut != "" {
		for i := 0; i < prefix; i++ {
			if results[i].tl == nil {
				continue
			}
			tlPoints = append(tlPoints, timelinePoint{
				Mode:         modes[i%len(modes)].String(),
				LoadPermille: int(loads[i/len(modes)] * 1000),
				Timeline:     results[i].tl,
			})
		}
		err := writeTo(*timelineOut, stdout, func(w io.Writer) error {
			if strings.HasSuffix(*timelineOut, ".csv") {
				cw := csv.NewWriter(w)
				if err := cw.Write(timeline.CSVHeader("mode", "load_permille")); err != nil {
					return err
				}
				for _, p := range tlPoints {
					if err := timeline.AppendCSV(cw, []string{p.Mode, strconv.Itoa(p.LoadPermille)}, p.Timeline); err != nil {
						return err
					}
				}
				cw.Flush()
				return cw.Error()
			}
			doc := struct {
				Points []timelinePoint `json:"points"`
			}{tlPoints}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(doc)
		})
		if err != nil {
			fmt.Fprintln(stderr, "netload:", err)
			return 1
		}
	}

	if *baselineOut != "" {
		// Figure 6: the baseline network (deterministic routing) against its
		// CR variant, one aligned comparison per offered load. Each point's
		// per-link flit counters diff under the engine-recorded move totals,
		// so the waterfall provably accounts for the whole traffic change.
		base := make(map[string]diff.Run)
		cr := make(map[string]diff.Run)
		for i := 0; i < prefix; i++ {
			mode := modes[i%len(modes)]
			if mode != flitnet.Deterministic && mode != flitnet.CR {
				continue
			}
			key := fmt.Sprintf("load=%04d", int(loads[i/len(modes)]*1000))
			run := diff.Run{
				Label:     mode.String() + " " + key,
				Metrics:   results[i].metrics,
				Timeline:  results[i].tl,
				FlitMoves: results[i].st.FlitMoves,
			}
			if mode == flitnet.Deterministic {
				base[key] = run
			} else {
				cr[key] = run
			}
		}
		rep := diff.CompareRunGrid("deterministic", "cr", base, cr)
		if err := rep.Reconcile(); err != nil {
			fmt.Fprintln(stderr, "netload:", err)
			return 1
		}
		render := diff.WriteText
		switch {
		case strings.HasSuffix(*baselineOut, ".json"):
			render = diff.WriteJSON
		case strings.HasSuffix(*baselineOut, ".csv"):
			render = diff.WriteCSV
		}
		err := writeTo(*baselineOut, stdout, func(w io.Writer) error { return render(w, rep) })
		if err != nil {
			fmt.Fprintln(stderr, "netload:", err)
			return 1
		}
	}

	if hub != nil {
		if *metricsOut != "" {
			if err := writeTo(*metricsOut, stdout, hub.Metrics.WritePrometheus); err != nil {
				fmt.Fprintln(stderr, "netload:", err)
				return 1
			}
		}
		if *traceOut != "" {
			if err := writeTo(*traceOut, stdout, hub.Trace.WriteChromeTrace); err != nil {
				fmt.Fprintln(stderr, "netload:", err)
				return 1
			}
		}
	}

	title := fmt.Sprintf("Delivered throughput (pkts/node/kcycle) and mean latency (cycles) vs offered load (x = load*1000), %s, %s traffic",
		*topoArg, pattern.Name())
	if *csvOut {
		fmt.Fprint(stdout, report.CSV("load_permille", names, points))
	} else {
		fmt.Fprint(stdout, report.Series(title, "load", names, points))
		fmt.Fprintf(stdout, "# idle cycles fast-forwarded: %d (event-driven engine; 0 under -dense)\n", idleTotal)
		reportShards := shards
		if *dense {
			reportShards = 1
		}
		fmt.Fprintf(stdout, "# shards: %d (intra-run engine shards per point; CR and -dense points always run the serial engine; results are byte-identical at any count)\n", reportShards)
		if len(tlPoints) > 0 {
			// Per-phase overhead breakdowns: each point's run segmented into
			// warmup/steady/burst/drain from its windowed event rates.
			fmt.Fprintf(stdout, "\n# phase analysis (%d-cycle windows)\n", *timelineInterval)
			for _, p := range tlPoints {
				var b strings.Builder
				fmt.Fprintf(&b, "%s routing, load %d/1000:\n", p.Mode, p.LoadPermille)
				timeline.WritePhaseReport(&b, "  ", p.Timeline)
				fmt.Fprint(stdout, b.String())
			}
		}
	}
	// SLO evaluation replays every completed point's timeline through the
	// monitor, in input order, so the merged alert report is byte-identical
	// at any -parallel/-shards value and on either engine. The report is
	// written before the violation exit so the artifact always exists.
	sloViolated := false
	if rules != nil {
		var reports []*monitor.Report
		for i := 0; i < prefix; i++ {
			if results[i].tl == nil {
				continue
			}
			m, err := monitor.New(rules)
			if err != nil {
				fmt.Fprintln(stderr, "netload:", err)
				return 1
			}
			m.SetBlamer(blame.Compute)
			label := fmt.Sprintf("%s/load=%d", modes[i%len(modes)], int(loads[i/len(modes)]*1000))
			if err := m.Replay(results[i].tl); err != nil {
				fmt.Fprintf(stderr, "netload: slo: %s: %v\n", label, err)
				return 1
			}
			rep := m.Snapshot(label)
			reports = append(reports, rep)
			sloViolated = sloViolated || len(rep.Incidents) > 0
		}
		err := writeTo(*sloOut, stdout, func(w io.Writer) error {
			switch {
			case strings.HasSuffix(*sloOut, ".json"):
				return monitor.WriteJSONReports(w, reports)
			case strings.HasSuffix(*sloOut, ".csv"):
				cw := csv.NewWriter(w)
				if err := cw.Write(monitor.CSVHeader("label")); err != nil {
					return err
				}
				for _, rep := range reports {
					if err := monitor.AppendCSV(cw, []string{rep.Label}, rep); err != nil {
						return err
					}
				}
				cw.Flush()
				return cw.Error()
			default:
				for i, rep := range reports {
					if i > 0 {
						if _, err := io.WriteString(w, "\n"); err != nil {
							return err
						}
					}
					if err := monitor.WriteText(w, rep); err != nil {
						return err
					}
				}
				return nil
			}
		})
		if err != nil {
			fmt.Fprintln(stderr, "netload:", err)
			return 1
		}
	}
	if hub != nil && hub.Trace.Dropped() > 0 {
		fmt.Fprintf(stderr, "netload: warning: trace dropped %d events; exported traces are truncated\n", hub.Trace.Dropped())
	}
	if srv != nil && ctx.Err() == nil {
		// Keep the final state inspectable until the user interrupts.
		fmt.Fprintln(stderr, "netload: sweep done, still serving (SIGINT to stop)")
		<-ctx.Done()
	}
	if sloViolated {
		fmt.Fprintln(stderr, "netload: SLO violated")
		return 3
	}
	return 0
}

// measure runs one (topology, mode, pattern, load) point and returns
// delivered packets per node per kilocycle, the mean packet latency in
// cycles, the raw flit-level stats for the observability dump, and the
// cycles the event-driven engine fast-forwarded while idle. With dense set
// it runs the retained dense reference engine; the numbers are
// byte-identical either way (the differential tests hold the engines to
// that), only the wall-clock cost differs — and the dense engine never
// fast-forwards, so its idle count is always zero. A non-nil scope traces
// every worm's transit for critical-path attribution; a non-nil sampler
// rides the net's cycle listener and is flushed at the final cycle, so the
// timeline is identical whichever engine ran the point.
func measure(topo topology.Topology, mode flitnet.Mode, vcs int, pattern workload.Pattern, load float64, cycles int, seed int64, dense bool, shards int, scope *obs.FlitScope, sampler *timeline.Sampler) (float64, float64, flitnet.Stats, uint64, error) {
	net, err := flitnet.New(flitnet.Config{
		Topology:        topo,
		Mode:            mode,
		BufferFlits:     3,
		InjectQueue:     8,
		VirtualChannels: vcs,
		DenseReference:  dense,
		Shards:          shards,
	})
	if err != nil {
		return 0, 0, flitnet.Stats{}, 0, err
	}
	defer net.Close()
	if scope != nil {
		net.SetFlitObserver(scope)
	}
	if sampler != nil {
		net.SetCycleListener(sampler.Advance)
	}
	nodes := net.Nodes()
	gen, err := workload.NewGenerator(pattern, nodes, load, seed)
	if err != nil {
		return 0, 0, flitnet.Stats{}, 0, err
	}
	for c := 0; c < cycles; c++ {
		for _, a := range gen.Cycle() {
			// Injection may backpressure at saturation; the refusal is
			// part of the measurement (offered != accepted).
			_ = net.Inject(network.Packet{
				Src: a.Src, Dst: a.Dst,
				Data: []network.Word{network.Word(c)},
			})
		}
		net.Tick(1)
	}
	// Drain what is in flight so latencies are complete.
	net.TickUntilQuiet(200000)
	for node := 0; node < nodes; node++ {
		for {
			if _, ok := net.TryRecv(node); !ok {
				break
			}
		}
	}
	if sampler != nil {
		sampler.Flush(net.Cycle())
	}
	st := net.FlitStats()
	thru := float64(st.Delivered) / float64(nodes) / float64(cycles) * 1000
	return thru, st.MeanLatency(), st, net.IdleSkipped(), nil
}

// recordPoint files one measure point's flit-level stats into the metrics
// registry, labeled by routing mode and offered load (permille), and records
// one Chrome-trace duration span per point so the sweep reads as a timeline.
func recordPoint(h *obs.Hub, mode flitnet.Mode, load float64, st flitnet.Stats, idle uint64) {
	key := func(name string) obs.Key {
		return obs.Key{
			Name:  name,
			Node:  -1,
			Proto: mode.String(),
			Event: fmt.Sprintf("load_%d", int(load*1000)),
		}
	}
	h.Metrics.Counter(key("netload_injected_total")).Add(st.Injected)
	h.Metrics.Counter(key("netload_delivered_total")).Add(st.Delivered)
	h.Metrics.Counter(key("netload_backpressure_total")).Add(st.Backpressure)
	h.Metrics.Counter(key("netload_kills_total")).Add(st.Kills)
	h.Metrics.Counter(key("netload_retries_total")).Add(st.Retries)
	h.Metrics.Counter(key("netload_flit_moves_total")).Add(st.FlitMoves)
	h.Metrics.Counter(key("netload_failed_worms_total")).Add(st.FailedWorms)
	h.Metrics.Counter(key("netload_cycles_total")).Add(st.Cycles)
	h.Metrics.Level(key("netload_latency_max_cycles")).Set(int64(st.LatencyMax))
	// The registry is integer-valued; keep three decimals of the mean.
	h.Metrics.Level(key("netload_latency_mean_millicycles")).Set(int64(st.MeanLatency() * 1000))
	// Engine-performance gauge: cycles the event-driven scheduler skipped
	// while no flit could move (always 0 under the dense reference).
	h.Metrics.Level(key("flitnet_idle_skipped")).Set(int64(idle))

	// One span per measure point, laid end to end: the span length is the
	// point's simulated cycle count, so relative widths on a perfetto
	// timeline compare drain times across modes and loads.
	h.Trace.Record(obs.TraceEvent{
		TS:    h.Trace.Now() + 1,
		Node:  -1,
		Name:  "netload." + mode.String() + ".load_" + fmt.Sprint(int(load*1000)),
		Proto: mode.String(),
		Axis:  obs.AxisOther,
		Dur:   st.Cycles,
		Phase: obs.PhaseComplete,
	})
}

// writeTo renders into a file, or stdout for "-". A failed render or close
// removes the file rather than leaving a truncated dump behind.
func writeTo(dest string, stdout io.Writer, render func(io.Writer) error) error {
	if dest == "-" {
		return render(stdout)
	}
	f, err := os.Create(dest)
	if err != nil {
		return fmt.Errorf("writing %s: %w", dest, err)
	}
	err = render(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(dest)
		return fmt.Errorf("writing %s: %w", dest, err)
	}
	return nil
}

func parseLoads(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || f <= 0 || f > 1 {
			return nil, fmt.Errorf("bad load %q (want 0 < load <= 1)", part)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no loads")
	}
	return out, nil
}
