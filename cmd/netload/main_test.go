package main

import (
	"strings"
	"testing"

	"msglayer/internal/flitnet"
	"msglayer/internal/topology"
	"msglayer/internal/workload"
)

func TestRunSmallSweep(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-loads", "0.05,0.2", "-cycles", "300", "-k", "2", "-levels", "2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"deterministic thru", "adaptive lat", "cr thru", "50", "200"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunMeshCSV(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-topology", "mesh", "-w", "3", "-h", "2", "-loads", "0.1",
		"-cycles", "200", "-vc", "2", "-csv"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "load_permille,") {
		t.Errorf("CSV:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-topology", "ring"}, &out, &errOut); code != 1 {
		t.Errorf("unknown topology exit %d", code)
	}
	if code := run([]string{"-loads", "2.0"}, &out, &errOut); code != 1 {
		t.Errorf("bad load exit %d", code)
	}
	if code := run([]string{"-loads", "x"}, &out, &errOut); code != 1 {
		t.Errorf("unparsable load exit %d", code)
	}
	if code := run([]string{"-wat"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag exit %d", code)
	}
}

// Throughput grows with offered load below saturation, and latency is
// sane (at least the minimum path length).
func TestMeasureMonotoneBelowSaturation(t *testing.T) {
	topo := topology.MustFatTree(2, 2)
	lo, latLo, err := measure(topo, flitnet.Deterministic, 1, workload.Uniform{}, 0.02, 1500, 7)
	if err != nil {
		t.Fatal(err)
	}
	hi, latHi, err := measure(topo, flitnet.Deterministic, 1, workload.Uniform{}, 0.10, 1500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !(hi > lo) {
		t.Errorf("throughput did not grow with load: %.2f vs %.2f", lo, hi)
	}
	if latLo < 3 || latHi < latLo {
		t.Errorf("latency odd: %.1f at low load, %.1f at high", latLo, latHi)
	}
}

func TestRunPatternFlag(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-pattern", "hotspot:15:600", "-loads", "0.1", "-cycles", "300"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "hotspot(15,600") {
		t.Errorf("title missing pattern:\n%s", out.String())
	}
	if code := run([]string{"-pattern", "ring"}, &out, &errOut); code != 1 {
		t.Errorf("bad pattern exit %d", code)
	}
}
