package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"msglayer/internal/flitnet"
	"msglayer/internal/obs/diff"
	"msglayer/internal/topology"
	"msglayer/internal/workload"
)

func TestRunSmallSweep(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-loads", "0.05,0.2", "-cycles", "300", "-k", "2", "-levels", "2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"deterministic thru", "adaptive lat", "cr thru", "50", "200"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunMeshCSV(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-topology", "mesh", "-w", "3", "-h", "2", "-loads", "0.1",
		"-cycles", "200", "-vc", "2", "-csv"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "load_permille,") {
		t.Errorf("CSV:\n%s", out.String())
	}
}

// TestRunParallelMatchesSerial is the parallel sweep engine's determinism
// contract: the report table, the metrics dump, and the Chrome trace — the
// hub state accumulated across every sweep point — must be byte-identical
// at any worker count.
func TestRunParallelMatchesSerial(t *testing.T) {
	runWith := func(workers string) (stdout, metrics, trace string) {
		dir := t.TempDir()
		mPath := filepath.Join(dir, "m.txt")
		tPath := filepath.Join(dir, "t.json")
		var out, errOut strings.Builder
		code := run([]string{"-loads", "0.05,0.1,0.2", "-cycles", "300", "-k", "2", "-levels", "2",
			"-metrics", mPath, "-trace-out", tPath, "-parallel", workers}, &out, &errOut)
		if code != 0 {
			t.Fatalf("-parallel %s: exit %d: %s", workers, code, errOut.String())
		}
		m, err := os.ReadFile(mPath)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := os.ReadFile(tPath)
		if err != nil {
			t.Fatal(err)
		}
		return out.String(), string(m), string(tr)
	}
	serialOut, serialMetrics, serialTrace := runWith("1")
	parOut, parMetrics, parTrace := runWith("8")
	if parOut != serialOut {
		t.Errorf("stdout differs between -parallel 1 and -parallel 8:\n--- serial ---\n%s--- parallel ---\n%s", serialOut, parOut)
	}
	if parMetrics != serialMetrics {
		t.Errorf("metrics dump differs between -parallel 1 and -parallel 8:\n--- serial ---\n%s--- parallel ---\n%s", serialMetrics, parMetrics)
	}
	if parTrace != serialTrace {
		t.Errorf("trace differs between -parallel 1 and -parallel 8:\n--- serial ---\n%s--- parallel ---\n%s", serialTrace, parTrace)
	}
}

// TestRunShardedMatchesSerial is the sharded engine's CLI contract: every
// artifact — the report table, metrics dump, Chrome trace, critical-path
// report, and timeline — must be byte-identical at any -shards value, and
// sharding must compose with -parallel without changing a byte either.
// Only the "# shards:" metadata line may differ, and it is stripped before
// comparing.
func TestRunShardedMatchesSerial(t *testing.T) {
	stripShardsLine := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "# shards:") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	runWith := func(extra ...string) (stdout, metrics, trace, critpath, tl string) {
		dir := t.TempDir()
		mPath := filepath.Join(dir, "m.txt")
		tPath := filepath.Join(dir, "t.json")
		cPath := filepath.Join(dir, "c.txt")
		tlPath := filepath.Join(dir, "tl.json")
		var out, errOut strings.Builder
		args := append([]string{"-topology", "mesh", "-w", "4", "-h", "4", "-vc", "2",
			"-loads", "0.05,0.2", "-cycles", "300",
			"-metrics", mPath, "-trace-out", tPath, "-critpath", cPath, "-timeline-out", tlPath}, extra...)
		code := run(args, &out, &errOut)
		if code != 0 {
			t.Fatalf("%v: exit %d: %s", extra, code, errOut.String())
		}
		read := func(p string) string {
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			return string(b)
		}
		return stripShardsLine(out.String()), read(mPath), read(tPath), read(cPath), read(tlPath)
	}
	serial := [5]string{}
	serial[0], serial[1], serial[2], serial[3], serial[4] = runWith("-shards", "1", "-parallel", "1")
	names := [5]string{"stdout", "metrics", "trace", "critpath", "timeline"}
	for _, variant := range [][]string{
		{"-shards", "2", "-parallel", "1"},
		{"-shards", "3", "-parallel", "1"},
		{"-shards", "2", "-parallel", "4"},
		// No -shards: the unset flag auto-sizes (explicit 0 is now an error).
		{"-parallel", "2"},
	} {
		got := [5]string{}
		got[0], got[1], got[2], got[3], got[4] = runWith(variant...)
		for i := range got {
			if got[i] != serial[i] {
				t.Errorf("%s differs between serial and %v", names[i], variant)
			}
		}
	}
}

// TestRunShardsClampWarning: a -shards value beyond the topology's router
// count is clamped with a warning, never fatal, and the report prints the
// effective count.
func TestRunShardsClampWarning(t *testing.T) {
	// The GOMAXPROCS budget clamp runs first; pin it high so the
	// router-count clamp is what fires regardless of the host's cores.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	var out, errOut strings.Builder
	code := run([]string{"-topology", "mesh", "-w", "2", "-h", "2", "-vc", "2",
		"-loads", "0.1", "-cycles", "100", "-shards", "64", "-parallel", "1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "clamped to 4") {
		t.Errorf("stderr missing clamp warning:\n%s", errOut.String())
	}
	if !strings.Contains(out.String(), "# shards: 4") {
		t.Errorf("report missing effective shard count:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-topology", "ring"}, &out, &errOut); code != 1 {
		t.Errorf("unknown topology exit %d", code)
	}
	if code := run([]string{"-loads", "2.0"}, &out, &errOut); code != 1 {
		t.Errorf("bad load exit %d", code)
	}
	if code := run([]string{"-loads", "x"}, &out, &errOut); code != 1 {
		t.Errorf("unparsable load exit %d", code)
	}
	if code := run([]string{"-wat"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag exit %d", code)
	}
}

// Throughput grows with offered load below saturation, and latency is
// sane (at least the minimum path length).
func TestMeasureMonotoneBelowSaturation(t *testing.T) {
	topo := topology.MustFatTree(2, 2)
	lo, latLo, _, _, err := measure(topo, flitnet.Deterministic, 1, workload.Uniform{}, 0.02, 1500, 7, false, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	hi, latHi, _, idle, err := measure(topo, flitnet.Deterministic, 1, workload.Uniform{}, 0.10, 1500, 7, false, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if idle == 0 {
		t.Error("event-driven engine fast-forwarded no idle cycles at low load")
	}
	if !(hi > lo) {
		t.Errorf("throughput did not grow with load: %.2f vs %.2f", lo, hi)
	}
	if latLo < 3 || latHi < latLo {
		t.Errorf("latency odd: %.1f at low load, %.1f at high", latLo, latHi)
	}
}

// TestObsNetloadMetricsAndTrace exercises the -metrics/-trace-out flags: the
// dump must label every (mode, load) point and the trace must carry one
// duration span per point.
func TestObsNetloadMetricsAndTrace(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.txt")
	trace := filepath.Join(dir, "trace.json")
	var out, errOut strings.Builder
	code := run([]string{"-loads", "0.05,0.2", "-cycles", "300", "-k", "2", "-levels", "2",
		"-metrics", metrics, "-trace-out", trace}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}

	md, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"deterministic", "adaptive", "cr"} {
		for _, load := range []string{"load_50", "load_200"} {
			want := `msglayer_netload_delivered_total{proto="` + mode + `",event="` + load + `"}`
			if !strings.Contains(string(md), want) {
				t.Errorf("metrics missing series %s:\n%s", want, md)
			}
		}
	}
	if !strings.Contains(string(md), "msglayer_netload_latency_mean_millicycles") {
		t.Errorf("metrics missing mean latency gauge:\n%s", md)
	}

	td, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(td, &doc); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	spans := 0
	for _, e := range doc.TraceEvents {
		if e.Phase == "X" && strings.HasPrefix(e.Name, "netload.") {
			spans++
		}
	}
	// 3 modes x 2 loads.
	if spans != 6 {
		t.Errorf("got %d netload spans, want 6", spans)
	}
}

// TestObsNetloadDeterministic runs the same sweep twice and requires
// byte-identical metrics dumps.
func TestObsNetloadDeterministic(t *testing.T) {
	render := func() string {
		var out, errOut strings.Builder
		code := run([]string{"-loads", "0.1", "-cycles", "200", "-k", "2", "-levels", "2",
			"-metrics", "-"}, &out, &errOut)
		if code != 0 {
			t.Fatalf("exit %d: %s", code, errOut.String())
		}
		return out.String()
	}
	if a, b := render(), render(); a != b {
		t.Error("netload metrics dump differs between identical runs")
	}
}

func TestRunPatternFlag(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-pattern", "hotspot:15:600", "-loads", "0.1", "-cycles", "300"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "hotspot(15,600") {
		t.Errorf("title missing pattern:\n%s", out.String())
	}
	if code := run([]string{"-pattern", "ring"}, &out, &errOut); code != 1 {
		t.Errorf("bad pattern exit %d", code)
	}
}

// syncBuffer is a strings.Builder safe to write from the run goroutine and
// read from the test.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestObsNetloadServeAnswersAndShutsDownOnSIGINT is the acceptance test for
// -serve: the HTTP endpoints answer while the process runs, and SIGINT shuts
// the tool down cleanly with exit status 0.
func TestObsNetloadServeAnswersAndShutsDownOnSIGINT(t *testing.T) {
	var out, errOut syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-loads", "0.05,0.1", "-cycles", "500", "-k", "2", "-levels", "2",
			"-serve", "127.0.0.1:0"}, &out, &errOut)
	}()

	// The address line is printed after the SIGINT handler is registered.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no server address on stderr:\n%s", errOut.String())
		}
		if _, rest, ok := strings.Cut(errOut.String(), "http://"); ok {
			addr = strings.Fields(rest)[0]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	for _, path := range []string{"/metrics", "/snapshot", "/trace", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if path == "/snapshot" && !strings.Contains(string(body), `"schema"`) {
			t.Errorf("/snapshot body missing schema field: %.200s", body)
		}
		if path == "/trace" && !strings.Contains(string(body), "traceEvents") {
			t.Errorf("/trace body missing traceEvents: %.200s", body)
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run exited %d after SIGINT:\n%s", code, errOut.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("run did not exit after SIGINT:\n%s", errOut.String())
	}

	// The server must actually be down.
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still answering after shutdown")
	}
}

// stripIdleLines removes the idle-fast-forward reporting — the one output
// that legitimately differs between engines (the dense reference never
// fast-forwards, so its count is always zero). Everything else must match
// byte for byte.
func stripIdleLines(s string) string {
	var kept []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "idle") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestObsDenseMatchesEventDriven is the tool-level half of the engine
// equivalence contract: a full sweep — report table, metrics dump, Chrome
// trace, covering all three routing modes — must be byte-identical between
// the event-driven engine and the retained dense reference (-dense),
// modulo the idle-fast-forward counters only the event engine accumulates.
func TestObsDenseMatchesEventDriven(t *testing.T) {
	runWith := func(extra ...string) (stdout, metrics, trace string) {
		dir := t.TempDir()
		mPath := filepath.Join(dir, "m.txt")
		tPath := filepath.Join(dir, "t.json")
		var out, errOut strings.Builder
		args := append([]string{"-loads", "0.05,0.2", "-cycles", "300", "-k", "2", "-levels", "2",
			"-vc", "2", "-metrics", mPath, "-trace-out", tPath}, extra...)
		code := run(args, &out, &errOut)
		if code != 0 {
			t.Fatalf("%v: exit %d: %s", extra, code, errOut.String())
		}
		m, err := os.ReadFile(mPath)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := os.ReadFile(tPath)
		if err != nil {
			t.Fatal(err)
		}
		return out.String(), string(m), string(tr)
	}
	eventOut, eventMetrics, eventTrace := runWith()
	denseOut, denseMetrics, denseTrace := runWith("-dense")
	eventOut, denseOut = stripIdleLines(eventOut), stripIdleLines(denseOut)
	eventMetrics, denseMetrics = stripIdleLines(eventMetrics), stripIdleLines(denseMetrics)
	if denseOut != eventOut {
		t.Errorf("stdout differs between -dense and event-driven:\n--- dense ---\n%s--- event ---\n%s", denseOut, eventOut)
	}
	if denseMetrics != eventMetrics {
		t.Errorf("metrics dump differs between -dense and event-driven:\n--- dense ---\n%s--- event ---\n%s", denseMetrics, eventMetrics)
	}
	if denseTrace != eventTrace {
		t.Errorf("trace differs between -dense and event-driven:\n--- dense ---\n%s--- event ---\n%s", denseTrace, eventTrace)
	}
}

// TestObsNetloadCritpath exercises -critpath: every sweep point gets a
// reconciled attribution report, and the report is byte-identical across
// worker counts and flit engines.
func TestObsNetloadCritpath(t *testing.T) {
	renderCP := func(extra ...string) string {
		dir := t.TempDir()
		cpPath := filepath.Join(dir, "cp.txt")
		var out, errOut strings.Builder
		args := append([]string{"-loads", "0.05,0.2", "-cycles", "300", "-k", "2", "-levels", "2",
			"-critpath", cpPath}, extra...)
		if code := run(args, &out, &errOut); code != 0 {
			t.Fatalf("%v: exit %d: %s", extra, code, errOut.String())
		}
		b, err := os.ReadFile(cpPath)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	base := renderCP()
	for _, want := range []string{
		"== deterministic routing, load 0.05 ==",
		"== cr routing, load 0.20 ==",
		"where the time goes",
		"critical path",
	} {
		if !strings.Contains(base, want) {
			t.Errorf("critpath report missing %q", want)
		}
	}
	if got := renderCP("-parallel", "8"); got != base {
		t.Error("critpath report differs between -parallel 1 and -parallel 8")
	}
	if got := renderCP("-dense"); got != base {
		t.Error("critpath report differs between flit engines")
	}
}

// renderTimeline runs a small sweep with -timeline-out and returns the
// stdout report and the timeline file contents.
func renderTimeline(t *testing.T, name string, extra ...string) (string, string) {
	t.Helper()
	dir := t.TempDir()
	tlPath := filepath.Join(dir, name)
	var out, errOut strings.Builder
	args := append([]string{"-loads", "0.05,0.2", "-cycles", "300", "-k", "2", "-levels", "2",
		"-timeline-out", tlPath, "-timeline-interval", "64"}, extra...)
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("%v: exit %d: %s", extra, code, errOut.String())
	}
	b, err := os.ReadFile(tlPath)
	if err != nil {
		t.Fatal(err)
	}
	return out.String(), string(b)
}

// TestObsNetloadTimeline exercises -timeline-out: the JSON document carries
// one reconciled timeline per sweep point, and the text report gains the
// per-phase analysis section.
func TestObsNetloadTimeline(t *testing.T) {
	out, tl := renderTimeline(t, "tl.json")
	var doc struct {
		Points []struct {
			Mode         string `json:"mode"`
			LoadPermille int    `json:"load_permille"`
			Timeline     struct {
				Schema   int    `json:"schema"`
				Interval uint64 `json:"interval"`
				Digest   string `json:"digest"`
				Windows  []struct {
					End uint64 `json:"end"`
				} `json:"windows"`
			} `json:"timeline"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(tl), &doc); err != nil {
		t.Fatalf("timeline JSON does not parse: %v", err)
	}
	if len(doc.Points) != 6 { // 3 modes x 2 loads
		t.Fatalf("got %d timeline points, want 6", len(doc.Points))
	}
	for _, p := range doc.Points {
		if p.Timeline.Interval != 64 || p.Timeline.Digest == "" || len(p.Timeline.Windows) == 0 {
			t.Errorf("%s load %d: timeline incomplete: interval=%d digest=%q windows=%d",
				p.Mode, p.LoadPermille, p.Timeline.Interval, p.Timeline.Digest, len(p.Timeline.Windows))
		}
	}
	for _, want := range []string{"# phase analysis (64-cycle windows)", "steady", "by axis:", "deterministic routing, load 200/1000:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestObsNetloadTimelineCSV checks the .csv spelling of -timeline-out.
func TestObsNetloadTimelineCSV(t *testing.T) {
	_, tl := renderTimeline(t, "tl.csv")
	lines := strings.Split(strings.TrimSpace(tl), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "mode,load_permille,window,start,end,kind,key,value") {
		t.Fatalf("CSV header wrong:\n%.300s", tl)
	}
	if !strings.Contains(tl, "\ncr,200,") {
		t.Errorf("CSV missing cr load-200 rows:\n%.300s", tl)
	}
}

// TestObsNetloadTimelineDeterminism is the timeline determinism contract:
// the timeline file and the report (with its phase analysis) must be
// byte-identical at any worker count and between the event-driven engine
// and the dense reference.
func TestObsNetloadTimelineDeterminism(t *testing.T) {
	baseOut, baseTl := renderTimeline(t, "tl.json")
	if out, tl := renderTimeline(t, "tl.json", "-parallel", "8"); tl != baseTl || out != baseOut {
		t.Error("timeline output differs between -parallel 1 and -parallel 8")
	}
	denseOut, denseTl := renderTimeline(t, "tl.json", "-dense")
	if denseTl != baseTl {
		t.Error("timeline file differs between flit engines")
	}
	if stripIdleLines(denseOut) != stripIdleLines(baseOut) {
		t.Error("report differs between flit engines beyond idle accounting")
	}
}

// renderBaseline runs a small sweep with -baseline and returns the report
// file contents.
func renderBaseline(t *testing.T, name string, extra ...string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, name)
	var out, errOut strings.Builder
	args := append([]string{"-loads", "0.05,0.2", "-cycles", "300", "-k", "2", "-levels", "2",
		"-baseline", path}, extra...)
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("%v: exit %d: %s", extra, code, errOut.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestObsNetloadBaseline exercises -baseline: the Figure 6 comparison —
// baseline deterministic routing diffed against CR per offered load — as a
// reconciled obsdiff report with per-link waterfalls pinned to the
// engines' own flit-move totals.
func TestObsNetloadBaseline(t *testing.T) {
	text := renderBaseline(t, "fig6.txt")
	for _, want := range []string{
		"obsdiff run-grid: A=deterministic B=cr",
		"load=0050/links (flits)",
		"load=0200/links (flits)",
		"total = load=0200/stats/flit_moves",
		"top movers",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("baseline report missing %q:\n%s", want, text)
		}
	}

	js := renderBaseline(t, "fig6.json")
	var rep diff.Report
	if err := json.Unmarshal([]byte(js), &rep); err != nil {
		t.Fatalf("baseline JSON does not parse: %v", err)
	}
	if rep.Kind != "run-grid" {
		t.Fatalf("report kind = %q", rep.Kind)
	}
	if err := rep.Reconcile(); err != nil {
		t.Fatalf("baseline report does not reconcile: %v", err)
	}
	if rep.Zero() {
		t.Fatal("deterministic-vs-CR diff is zero; CR retries should move link traffic")
	}
	linkSections := 0
	for _, s := range rep.Sections {
		if strings.HasSuffix(s.Name, "/links") {
			linkSections++
			if s.TotalKey == "" || len(s.Terms) == 0 {
				t.Errorf("section %s: not pinned (%q) or empty (%d terms)", s.Name, s.TotalKey, len(s.Terms))
			}
		}
	}
	if linkSections != 2 {
		t.Fatalf("got %d per-load link sections, want 2", linkSections)
	}

	if !strings.HasPrefix(renderBaseline(t, "fig6.csv"), "kind,section,unit,key,a,b,delta,permille,only_in\n") {
		t.Error("csv baseline report missing header")
	}
}

// TestObsNetloadBaselineDeterminism: the baseline report is byte-identical
// at any worker count and between flit engines, and composes with
// -timeline-out (per-phase deltas ride the same report).
func TestObsNetloadBaselineDeterminism(t *testing.T) {
	base := renderBaseline(t, "fig6.txt")
	if got := renderBaseline(t, "fig6.txt", "-parallel", "8"); got != base {
		t.Error("baseline report differs between -parallel 1 and -parallel 8")
	}
	if got := renderBaseline(t, "fig6.txt", "-dense"); got != base {
		t.Error("baseline report differs between flit engines")
	}

	dir := t.TempDir()
	withTL := renderBaseline(t, "fig6.txt", "-timeline-out", filepath.Join(dir, "tl.json"), "-timeline-interval", "64")
	if !strings.Contains(withTL, "load=0200/timeline/phases") {
		t.Errorf("baseline report with -timeline-out missing per-phase deltas:\n%s", withTL)
	}
}

// TestProfileFlags exercises -cpuprofile/-memprofile: both files must exist
// and be non-empty after a successful run, and an unwritable path must fail
// the run without leaving a partial file.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpuPath := filepath.Join(dir, "cpu.out")
	memPath := filepath.Join(dir, "mem.out")
	var out, errOut strings.Builder
	code := run([]string{"-loads", "0.05", "-cycles", "100", "-k", "2", "-levels", "2",
		"-cpuprofile", cpuPath, "-memprofile", memPath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, p := range []string{cpuPath, memPath} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}

	badCPU := filepath.Join(dir, "no", "such", "cpu.out")
	if code := run([]string{"-loads", "0.05", "-cycles", "50", "-k", "2", "-levels", "2",
		"-cpuprofile", badCPU}, &out, &errOut); code != 1 {
		t.Errorf("unwritable -cpuprofile exit %d, want 1", code)
	}
	badMem := filepath.Join(dir, "no", "such", "mem.out")
	if code := run([]string{"-loads", "0.05", "-cycles", "50", "-k", "2", "-levels", "2",
		"-memprofile", badMem}, &out, &errOut); code != 1 {
		t.Errorf("unwritable -memprofile exit %d, want 1", code)
	}
	if _, err := os.Stat(badMem); !os.IsNotExist(err) {
		t.Error("partial memprofile left behind")
	}
}
