package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sloRules writes a rules file into a temp dir.
func sloRules(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// tightSLO fires on every point: no link moves a million flits per kcycle.
const tightSLO = `rules:
  - name: impossible-link-floor
    kind: rate
    severity: page
    match:
      prefix: flitnet_link_flits_total
    min: 1000000
`

// looseSLO never fires (a link moves at most 1000 flits per kcycle).
const looseSLO = `{"rules": [{"name": "roomy-link-ceiling", "kind": "rate",
  "match": {"prefix": "flitnet_link_flits_total"}, "max": 1000000}]}`

// runSLO runs a small sweep with -slo and returns the exit code and the
// alert report contents.
func runSLO(t *testing.T, rulesPath string, extra ...string) (int, string) {
	t.Helper()
	sloPath := filepath.Join(t.TempDir(), "slo.txt")
	var out, errOut strings.Builder
	args := append([]string{"-loads", "0.05,0.2", "-cycles", "300", "-k", "2", "-levels", "2",
		"-slo", rulesPath, "-slo-out", sloPath}, extra...)
	code := run(args, &out, &errOut)
	b, err := os.ReadFile(sloPath)
	if err != nil {
		t.Fatalf("slo report not written (exit %d): %v\nstderr:\n%s", code, err, errOut.String())
	}
	return code, string(b)
}

// TestObsNetloadSLOViolation: a firing rule exits 3 and the report (still
// written) names every point.
func TestObsNetloadSLOViolation(t *testing.T) {
	code, rep := runSLO(t, sloRules(t, "tight.yaml", tightSLO))
	if code != 3 {
		t.Fatalf("exit = %d, want 3\n%s", code, rep)
	}
	if !strings.Contains(rep, "impossible-link-floor") || !strings.Contains(rep, "FIRING") {
		t.Fatalf("report missing firing rule:\n%s", rep)
	}
	for _, label := range []string{"deterministic/load=50", "adaptive/load=200", "cr/load=200"} {
		if !strings.Contains(rep, "# slo report: "+label) {
			t.Errorf("report missing point %s:\n%s", label, rep)
		}
	}
}

// TestObsNetloadSLOCompliant: a loose rule exits 0.
func TestObsNetloadSLOCompliant(t *testing.T) {
	code, rep := runSLO(t, sloRules(t, "loose.json", looseSLO))
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, rep)
	}
	if !strings.Contains(rep, "0 incident(s), ok") {
		t.Fatalf("report missing compliant rule:\n%s", rep)
	}
}

// TestObsNetloadSLODeterminism: the alert report is byte-identical across
// worker counts, engine shards, and the dense reference engine — the alert
// determinism contract CI gates with the canonical rules.
func TestObsNetloadSLODeterminism(t *testing.T) {
	rules := sloRules(t, "tight.yaml", tightSLO)
	_, base := runSLO(t, rules, "-parallel", "1")
	for _, extra := range [][]string{
		{"-parallel", "4"},
		{"-shards", "2"},
		{"-dense"},
	} {
		_, got := runSLO(t, rules, extra...)
		if got != base {
			t.Errorf("%v: alert report differs from serial:\n--- serial ---\n%s\n--- %v ---\n%s",
				extra, base, extra, got)
		}
	}
}

// TestObsNetloadSLOBadRules: a bad rules file fails before the sweep.
func TestObsNetloadSLOBadRules(t *testing.T) {
	bad := sloRules(t, "bad.yaml", "rules:\n  - name: x\n    kind: nosuch\n")
	var out, errOut strings.Builder
	if code := run([]string{"-slo", bad}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "unknown kind") {
		t.Fatalf("stderr missing rules error:\n%s", errOut.String())
	}
}
