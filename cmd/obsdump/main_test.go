package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readFile(path string) ([]byte, error) { return os.ReadFile(path) }

// dump runs the tool and returns stdout, failing on nonzero exit.
func dump(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("obsdump %v exited %d: %s", args, code, stderr.String())
	}
	return stdout.String()
}

func TestObsDumpScenariosProduceMetrics(t *testing.T) {
	for _, scen := range []string{"cm5-finite", "cm5-stream", "cr-finite", "cr-stream"} {
		out := dump(t, "-scenario", scen, "-words", "32")
		if !strings.Contains(out, "msglayer_packets_sent_total") {
			t.Errorf("%s: no packet counters in metrics dump", scen)
		}
		if !strings.Contains(out, "msglayer_protocol_events_total") {
			t.Errorf("%s: no protocol event counters in metrics dump", scen)
		}
	}
}

func TestObsDumpChromeTraceValid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	dump(t, "-scenario", "all", "-words", "48", "-metrics-out", filepath.Join(t.TempDir(), "m.txt"), "-trace-out", path)

	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Cat   string `json:"cat"`
			Phase string `json:"ph"`
			TS    uint64 `json:"ts"`
			TID   int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	cats := map[string]bool{}
	spans := 0
	var lastTS uint64
	for _, e := range doc.TraceEvents {
		cats[e.Cat] = true
		if e.Phase == "X" {
			spans++
		}
		if e.Phase == "i" {
			if e.TS <= lastTS && lastTS != 0 {
				t.Fatalf("instant timestamps not monotonic at %s (%d after %d)", e.Name, e.TS, lastTS)
			}
			lastTS = e.TS
		}
	}
	// Every Feature axis must appear: base and buffer_mgmt from the finite
	// protocol, fault_tol from stream acks, in_order from stream sequencing.
	for _, axis := range []string{"base", "buffer_mgmt", "in_order", "fault_tol"} {
		if !cats[axis] {
			t.Errorf("feature axis %q absent from trace categories", axis)
		}
	}
	// The finite scenarios record a src and a dst transfer span each.
	if spans < 4 {
		t.Errorf("only %d duration spans recorded, want >= 4", spans)
	}
}

func TestObsDumpJSONMetricsValid(t *testing.T) {
	out := dump(t, "-scenario", "cm5-finite", "-metrics-format", "json")
	var doc struct {
		Metrics []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("JSON metrics do not parse: %v", err)
	}
	kinds := map[string]bool{}
	for _, m := range doc.Metrics {
		kinds[m.Kind] = true
	}
	for _, k := range []string{"counter", "gauge", "histogram"} {
		if !kinds[k] {
			t.Errorf("no %s series in JSON metrics", k)
		}
	}
}

// TestObsDumpDeterministic runs the full dump twice and requires
// byte-identical metrics and trace output — the CI determinism gate.
func TestObsDumpDeterministic(t *testing.T) {
	render := func() (string, string) {
		dir := t.TempDir()
		trace := filepath.Join(dir, "trace.json")
		metrics := dump(t, "-scenario", "all", "-words", "64", "-trace-out", trace)
		td, err := readFile(trace)
		if err != nil {
			t.Fatal(err)
		}
		return metrics, string(td)
	}
	m1, t1 := render()
	m2, t2 := render()
	if m1 != m2 {
		t.Error("metrics dump differs between identical runs")
	}
	if t1 != t2 {
		t.Error("chrome trace differs between identical runs")
	}
}

func TestObsDumpBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scenario", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown scenario exited %d, want 2", code)
	}
	if code := run([]string{"-metrics-format", "xml"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad format exited %d, want 2", code)
	}
	if code := run([]string{"-words", "0"}, &stdout, &stderr); code != 2 {
		t.Fatalf("zero words exited %d, want 2", code)
	}
}

// TestObsDumpUnwritableTraceOut: an unwritable -trace-out must be a non-zero
// exit with a clear error, not a silent success or a partial file. A
// directory path fails os.Create even when tests run as root.
func TestObsDumpUnwritableTraceOut(t *testing.T) {
	dest := t.TempDir() // a directory is not a writable file path
	var stdout, stderr bytes.Buffer
	code := run([]string{"-scenario", "cm5-finite", "-words", "16",
		"-metrics-out", filepath.Join(t.TempDir(), "m.txt"), "-trace-out", dest}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("unwritable -trace-out exited 0; stderr: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "writing "+dest) {
		t.Errorf("error does not name the destination: %s", stderr.String())
	}
}

// TestObsDumpFailedRenderRemovesPartialFile: when rendering into a file
// fails midway, writeDest must remove the truncated artifact.
func TestObsDumpFailedRenderRemovesPartialFile(t *testing.T) {
	dest := filepath.Join(t.TempDir(), "trace.json")
	renderErr := errors.New("render broke midway")
	err := writeDest(dest, io.Discard, func(w io.Writer) error {
		if _, werr := w.Write([]byte(`{"traceEvents":[`)); werr != nil {
			return werr
		}
		return renderErr
	})
	if !errors.Is(err, renderErr) {
		t.Fatalf("writeDest error = %v, want wrapped render error", err)
	}
	if _, statErr := os.Stat(dest); !errors.Is(statErr, os.ErrNotExist) {
		t.Errorf("partial file left behind at %s (stat err: %v)", dest, statErr)
	}
}
