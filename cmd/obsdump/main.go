// Command obsdump runs the paper's transfer scenarios with the runtime
// observability layer attached and dumps what it recorded: a metrics
// registry (Prometheus text or JSON) and a Chrome trace-event JSON timeline
// loadable in chrome://tracing or https://ui.perfetto.dev, with every event
// attributed to the paper's Feature axes.
//
// Usage:
//
//	obsdump                          # all four scenarios, metrics to stdout
//	obsdump -scenario cm5-finite     # one scenario
//	obsdump -words 256               # transfer size
//	obsdump -metrics-format json     # JSON instead of Prometheus text
//	obsdump -metrics-out metrics.txt # write metrics to a file
//	obsdump -trace-out trace.json    # write the Chrome trace ("-" = stdout)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"msglayer/internal/cmam"
	"msglayer/internal/cost"
	"msglayer/internal/crmsg"
	"msglayer/internal/machine"
	"msglayer/internal/network"
	"msglayer/internal/obs"
	"msglayer/internal/obs/serve"
	"msglayer/internal/protocols"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// maxRounds bounds every scenario's pump loop.
const maxRounds = 1_000_000

// scenario is one observable run.
type scenario struct {
	name string
	desc string
	run  func(h *obs.Hub, words int) error
}

// scenarios in fixed order, for -scenario all determinism.
var scenarios = []scenario{
	{"cm5-finite", "finite-sequence protocol on the CM-5 substrate", runCM5Finite},
	{"cm5-stream", "indefinite-sequence protocol on the CM-5 substrate", runCM5Stream},
	{"cr-finite", "finite-sequence protocol on the CR substrate", runCRFinite},
	{"cr-stream", "indefinite-sequence protocol on the CR substrate", runCRStream},
}

// run executes the tool; factored out of main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("obsdump", flag.ContinueOnError)
	fs.SetOutput(stderr)
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.name
	}
	scen := fs.String("scenario", "all", "scenario to run: all, "+strings.Join(names, ", "))
	words := fs.Int("words", 64, "transfer size in words")
	metricsFormat := fs.String("metrics-format", "prom", "metrics dump format: prom or json")
	metricsOut := fs.String("metrics-out", "-", "metrics destination file (\"-\" = stdout)")
	traceOut := fs.String("trace-out", "", "Chrome trace-event JSON destination (\"-\" = stdout, empty = no trace)")
	serveAddr := fs.String("serve", "",
		"serve live observability on this address (/metrics, /snapshot, /trace, /debug/pprof/) and keep serving after the runs until interrupted")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *words < 1 {
		fmt.Fprintln(stderr, "obsdump: -words must be positive")
		return 2
	}
	if *metricsFormat != "prom" && *metricsFormat != "json" {
		fmt.Fprintln(stderr, "obsdump: -metrics-format must be prom or json")
		return 2
	}

	var selected []scenario
	for _, s := range scenarios {
		if *scen == "all" || *scen == s.name {
			selected = append(selected, s)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(stderr, "obsdump: unknown scenario %q (want all, %s)\n", *scen, strings.Join(names, ", "))
		return 2
	}

	hub := obs.NewHub()
	ctx := context.Background()
	var srv *serve.Server
	if *serveAddr != "" {
		srv = serve.New(hub)
		if err := srv.Start(*serveAddr); err != nil {
			fmt.Fprintln(stderr, "obsdump:", err)
			return 1
		}
		var cancel context.CancelFunc
		ctx, cancel = signal.NotifyContext(ctx, os.Interrupt)
		defer cancel()
		defer func() {
			sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer scancel()
			if err := srv.Shutdown(sctx); err != nil {
				fmt.Fprintln(stderr, "obsdump: shutdown:", err)
			}
		}()
		fmt.Fprintf(stderr, "obsdump: observability on http://%s (SIGINT to stop)\n", srv.Addr())
	}
	for _, s := range selected {
		var err error
		runOne := func() { err = s.run(hub, *words) }
		if srv != nil {
			srv.Sync(runOne) // scenarios mutate the hub; serialize vs handlers
		} else {
			runOne()
		}
		if err != nil {
			fmt.Fprintf(stderr, "obsdump: %s: %v\n", s.name, err)
			return 1
		}
	}

	if err := writeMetrics(hub, *metricsFormat, *metricsOut, stdout); err != nil {
		fmt.Fprintln(stderr, "obsdump:", err)
		return 1
	}
	if *traceOut != "" {
		if err := writeTrace(hub, *traceOut, stdout); err != nil {
			fmt.Fprintln(stderr, "obsdump:", err)
			return 1
		}
	}
	if d := hub.Trace.Dropped(); d > 0 {
		fmt.Fprintf(stderr, "obsdump: warning: trace dropped %d events; exported traces are truncated\n", d)
	}
	if srv != nil && ctx.Err() == nil {
		// Keep the recorded run inspectable until the user interrupts.
		fmt.Fprintln(stderr, "obsdump: runs done, still serving (SIGINT to stop)")
		<-ctx.Done()
	}
	return 0
}

// writeMetrics dumps the registry in the chosen format.
func writeMetrics(h *obs.Hub, format, dest string, stdout io.Writer) error {
	return writeDest(dest, stdout, func(w io.Writer) error {
		if format == "json" {
			data, err := h.Metrics.MetricsJSON()
			if err != nil {
				return err
			}
			_, err = w.Write(append(data, '\n'))
			return err
		}
		return h.Metrics.WritePrometheus(w)
	})
}

// writeTrace dumps the Chrome trace-event JSON.
func writeTrace(h *obs.Hub, dest string, stdout io.Writer) error {
	return writeDest(dest, stdout, func(w io.Writer) error {
		return h.Trace.WriteChromeTrace(w)
	})
}

// writeDest renders into a file, or stdout for "-". An unwritable path is a
// clear error, and a failed render or close removes the file instead of
// leaving a truncated dump that looks like a valid artifact.
func writeDest(dest string, stdout io.Writer, render func(io.Writer) error) error {
	if dest == "-" {
		return render(stdout)
	}
	f, err := os.Create(dest)
	if err != nil {
		return fmt.Errorf("writing %s: %w", dest, err)
	}
	err = render(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(dest)
		return fmt.Errorf("writing %s: %w", dest, err)
	}
	return nil
}

// payload builds a deterministic test payload.
func payload(words int) []network.Word {
	data := make([]network.Word, words)
	for i := range data {
		data[i] = network.Word(i*3 + 1)
	}
	return data
}

// observedMachine assembles a two-node machine over the substrate with the
// hub attached.
func observedMachine(net network.Network, h *obs.Hub) (*machine.Machine, error) {
	sched, err := cost.NewPaperSchedule(net.PacketWords())
	if err != nil {
		return nil, err
	}
	m, err := machine.New(net, sched)
	if err != nil {
		return nil, err
	}
	m.Node(0).SetRole(cost.Source)
	m.Node(1).SetRole(cost.Destination)
	m.AttachObserver(h)
	return m, nil
}

// runCM5Finite runs one finite-sequence CMAM transfer.
func runCM5Finite(h *obs.Hub, words int) error {
	net, err := network.NewCM5Net(network.CM5Config{Nodes: 2})
	if err != nil {
		return err
	}
	m, err := observedMachine(net, h)
	if err != nil {
		return err
	}
	src := protocols.NewFinite(cmam.NewEndpoint(m.Node(0)))
	dst := protocols.NewFinite(cmam.NewEndpoint(m.Node(1)))
	tr, err := src.Start(1, payload(words))
	if err != nil {
		return err
	}
	return m.Run(maxRounds,
		machine.StepFunc(func() (bool, error) { return tr.Done(), src.Pump() }),
		machine.StepFunc(func() (bool, error) { return tr.Done(), dst.Pump() }),
	)
}

// runCM5Stream runs an indefinite-sequence CMAM stream under the paper's
// pair-swap reordering.
func runCM5Stream(h *obs.Hub, words int) error {
	net, err := network.NewCM5Net(network.CM5Config{Nodes: 2, Reorder: network.PairSwap()})
	if err != nil {
		return err
	}
	m, err := observedMachine(net, h)
	if err != nil {
		return err
	}
	src := protocols.MustNewStream(cmam.NewEndpoint(m.Node(0)), protocols.StreamConfig{})
	dst := protocols.MustNewStream(cmam.NewEndpoint(m.Node(1)), protocols.StreamConfig{})
	conn := src.Open(1, 0)
	data := payload(words)
	pw := net.PacketWords()
	for off := 0; off < len(data); off += pw {
		end := off + pw
		if end > len(data) {
			end = len(data)
		}
		if err := conn.Send(data[off:end]...); err != nil {
			return err
		}
	}
	return m.Run(maxRounds,
		machine.StepFunc(func() (bool, error) { return conn.Idle(), src.Pump() }),
		machine.StepFunc(func() (bool, error) { return conn.Idle(), dst.Pump() }),
	)
}

// runCRFinite runs one finite transfer over the CR substrate.
func runCRFinite(h *obs.Hub, words int) error {
	net, err := network.NewCRNet(network.CRConfig{Nodes: 2})
	if err != nil {
		return err
	}
	m, err := observedMachine(net, h)
	if err != nil {
		return err
	}
	src, err := crmsg.NewFinite(cmam.NewEndpoint(m.Node(0)), net, crmsg.FiniteConfig{})
	if err != nil {
		return err
	}
	received := false
	dst, err := crmsg.NewFinite(cmam.NewEndpoint(m.Node(1)), net, crmsg.FiniteConfig{
		OnReceive: func(int, []network.Word) { received = true },
	})
	if err != nil {
		return err
	}
	tr, err := src.Start(1, payload(words))
	if err != nil {
		return err
	}
	return m.Run(maxRounds,
		machine.StepFunc(func() (bool, error) { return tr.Done() && received, src.Pump() }),
		machine.StepFunc(func() (bool, error) { return tr.Done() && received, dst.Pump() }),
	)
}

// runCRStream runs an indefinite stream over the CR substrate.
func runCRStream(h *obs.Hub, words int) error {
	net, err := network.NewCRNet(network.CRConfig{Nodes: 2})
	if err != nil {
		return err
	}
	m, err := observedMachine(net, h)
	if err != nil {
		return err
	}
	delivered := 0
	src := crmsg.MustNewStream(cmam.NewEndpoint(m.Node(0)), crmsg.StreamConfig{})
	dst := crmsg.MustNewStream(cmam.NewEndpoint(m.Node(1)), crmsg.StreamConfig{
		OnDeliver: func(int, uint8, []network.Word) { delivered++ },
	})
	conn := src.Open(1, 0)
	data := payload(words)
	pw := net.PacketWords()
	want := 0
	for off := 0; off < len(data); off += pw {
		end := off + pw
		if end > len(data) {
			end = len(data)
		}
		if err := conn.Send(data[off:end]...); err != nil {
			return err
		}
		want++
	}
	return m.Run(maxRounds,
		machine.StepFunc(func() (bool, error) { return delivered == want, src.Pump() }),
		machine.StepFunc(func() (bool, error) { return delivered == want, dst.Pump() }),
	)
}
