package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// render runs the tool and returns stdout, failing on nonzero exit.
func render(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("critpath %v exited %d: %s", args, code, stderr.String())
	}
	return stdout.String()
}

// TestReportByteIdenticalAcrossWorkers holds the report to the repo's
// parallelism contract: -parallel 1 and a fanned-out pool produce the same
// bytes.
func TestReportByteIdenticalAcrossWorkers(t *testing.T) {
	serial := render(t, "-parallel", "1", "-cycles", "200")
	fanned := render(t, "-parallel", "8", "-cycles", "200")
	if serial != fanned {
		t.Fatal("report differs between -parallel 1 and -parallel 8")
	}
}

// TestReportByteIdenticalAcrossEngines holds the report to the flit-engine
// contract: the dense reference and event-driven engines trace identically.
func TestReportByteIdenticalAcrossEngines(t *testing.T) {
	event := render(t, "-cycles", "200")
	dense := render(t, "-cycles", "200", "-dense")
	if event != dense {
		t.Fatal("report differs between event-driven and dense flit engines")
	}
}

// TestReportShowsAllSections sanity-checks the default text report.
func TestReportShowsAllSections(t *testing.T) {
	out := render(t, "-cycles", "200")
	for _, s := range []string{
		"== scenario single",
		"== scenario cm5-finite",
		"== scenario cr-stream",
		"== flit transit: deterministic routing",
		"== flit transit: cr routing",
		"where the time goes",
		"critical path",
		"reconciled exactly against registry counters",
	} {
		if !strings.Contains(out, s) {
			t.Fatalf("report missing %q", s)
		}
	}
}

// TestJSONReportParses checks the -json document is valid and covers every
// scenario.
func TestJSONReportParses(t *testing.T) {
	out := render(t, "-json", "-noflit", "-scenarios", "cm5-finite,cm5-stream")
	var doc struct {
		Scenarios map[string]json.RawMessage `json:"scenarios"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(doc.Scenarios) != 2 {
		t.Fatalf("got %d scenarios, want 2", len(doc.Scenarios))
	}
}

// TestFlowExport checks the Chrome flow trace contains flow arrows.
func TestFlowExport(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-noflit", "-scenarios", "cm5-finite", "-flow", "-"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, `"ph": "s"`) || !strings.Contains(out, `"ph": "f"`) {
		t.Fatal("flow export carries no flow arrows")
	}
}

// TestUnknownScenarioFails covers the error path.
func TestUnknownScenarioFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scenarios", "nope", "-noflit"}, &stdout, &stderr); code == 0 {
		t.Fatal("unknown scenario accepted")
	}
}

// TestObsCritpathTimeline exercises -timeline-out: the scenario sequence
// runs again into one sampled hub, the export reconciles (the writer
// refuses otherwise), and a .csv suffix selects the CSV form.
func TestObsCritpathTimeline(t *testing.T) {
	dir := t.TempDir()
	tlPath := filepath.Join(dir, "tl.json")
	out := render(t, "-noflit", "-scenarios", "cm5-finite,cr-finite", "-words", "16",
		"-timeline-out", tlPath, "-timeline-interval", "8")
	if !strings.Contains(out, "scenario cm5-finite") {
		t.Fatalf("report missing scenario section:\n%.500s", out)
	}
	data, err := os.ReadFile(tlPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Interval uint64            `json:"interval"`
		Windows  []json.RawMessage `json:"windows"`
		Digest   string            `json:"digest"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("timeline does not parse: %v", err)
	}
	if doc.Interval != 8 || len(doc.Windows) == 0 || doc.Digest == "" {
		t.Fatalf("timeline missing fields: interval=%d windows=%d digest=%q", doc.Interval, len(doc.Windows), doc.Digest)
	}

	csvPath := filepath.Join(dir, "tl.csv")
	render(t, "-noflit", "-scenarios", "single", "-timeline-out", csvPath)
	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "window,start,end") {
		t.Fatalf("csv header: %.100s", csv)
	}

	// A bad interval is a usage error before any run happens.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-timeline-interval", "0", "-timeline-out", "-"}, &stdout, &stderr); code != 2 {
		t.Fatalf("interval 0 exited %d, want 2", code)
	}
}
