// Command critpath answers the paper's "where does the time go?" question
// per message instead of in aggregate: it runs the canonical protocol
// scenarios and a small flit-level grid with causal span tracing attached,
// reconstructs every message's lifetime, and reports the exact
// decomposition of delivery time into work (by Feature axis), queueing,
// backpressure, and retransmission — plus the critical path across
// concurrent messages.
//
// Every report is cross-checked before it is printed: the per-message
// attribution must reconcile exactly with the aggregate metrics registry
// (the counters the Table 1-3 reproduction is verified against), and the
// output is byte-identical across -parallel worker counts and the dense vs
// event-driven flit engines.
//
// Usage:
//
//	critpath                          # text report, all canonical scenarios + flit grid
//	critpath -scenarios cm5-finite    # subset of protocol scenarios
//	critpath -words 256               # larger transfers
//	critpath -json                    # JSON report
//	critpath -flow flow.json          # Chrome flow-arrow trace ("-" = stdout)
//	critpath -flow-scenario cr-stream # which scenario the flow trace covers
//	critpath -noflit                  # skip the flit-level grid
//	critpath -parallel 8 -dense       # flit grid workers / dense reference engine
//	critpath -timeline-out tl.json    # windowed metrics timeline (.csv for CSV)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"msglayer/internal/critpath"
	"msglayer/internal/experiments"
	"msglayer/internal/flitnet"
	"msglayer/internal/network"
	"msglayer/internal/obs"
	"msglayer/internal/obs/timeline"
	"msglayer/internal/parsweep"
	"msglayer/internal/topology"
	"msglayer/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// flitLoads is the fixed offered-load grid of the flit section.
var flitLoads = []float64{0.05, 0.2}

// flitModes is the fixed routing-mode grid of the flit section.
var flitModes = []flitnet.Mode{flitnet.Deterministic, flitnet.Adaptive, flitnet.CR}

// run executes the tool; factored out of main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("critpath", flag.ContinueOnError)
	fs.SetOutput(stderr)
	words := fs.Int("words", 64, "transfer size in words for the protocol scenarios")
	scenariosArg := fs.String("scenarios", "all", "comma-separated canonical scenarios, or \"all\"")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	flowOut := fs.String("flow", "", "write a Chrome trace with per-message flow arrows (\"-\" = stdout)")
	flowScenario := fs.String("flow-scenario", "cm5-finite", "scenario the -flow trace covers")
	noFlit := fs.Bool("noflit", false, "skip the flit-level transit grid")
	cycles := fs.Int("cycles", 400, "cycles per flit-grid point")
	parallel := fs.Int("parallel", 0, "worker goroutines for the flit grid (0 = GOMAXPROCS, 1 = serial)")
	shardsFlag := fs.Int("shards", 0,
		"engine shards per flit-grid point (0 = auto: GOMAXPROCS split across the -parallel workers, which take precedence; 1 = serial engine; report is byte-identical at any value)")
	dense := fs.Bool("dense", false, "use the dense reference flit engine (report is byte-identical)")
	timelineOut := fs.String("timeline-out", "",
		"run the selected protocol scenarios into one shared hub, sampling windowed metric deltas on the round clock, and write the timeline (\"-\" = stdout; a .csv suffix selects CSV, otherwise JSON)")
	timelineInterval := fs.Int("timeline-interval", 16, "timeline window width in machine rounds")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "critpath: per-message critical-path latency attribution")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := parsweep.ValidatePositiveFlags(fs, "parallel", "shards"); err != nil {
		fmt.Fprintln(stderr, "critpath:", err)
		return 1
	}
	if *timelineInterval < 1 {
		fmt.Fprintln(stderr, "critpath: -timeline-interval must be >= 1")
		return 2
	}

	scenarios := experiments.CanonicalScenarios()
	if *scenariosArg != "all" {
		scenarios = strings.Split(*scenariosArg, ",")
	}

	// Protocol section. experiments.SetObserver is process-global, so the
	// scenarios run serially, each into a fresh hub; reconciliation gates
	// every report.
	type scenarioRun struct {
		name string
		hub  *obs.Hub
		a    *critpath.Analysis
	}
	var runs []scenarioRun
	for _, name := range scenarios {
		h, err := runScenario(name, *words)
		if err != nil {
			fmt.Fprintln(stderr, "critpath:", err)
			return 1
		}
		// A trace that dropped events cannot reconcile against the
		// registry; report it as partial instead of failing the run.
		if d := h.Trace.Dropped(); d > 0 {
			fmt.Fprintf(stderr, "critpath: warning: %s: trace dropped %d events; report is partial and skips reconciliation\n", name, d)
		} else if err := critpath.Reconcile(h); err != nil {
			fmt.Fprintf(stderr, "critpath: %s: reconciliation failed: %v\n", name, err)
			return 1
		}
		runs = append(runs, scenarioRun{name, h, critpath.Analyze(h.Trace.Events())})
	}

	// Flit section: each (mode, load) point is an independent deterministic
	// run with its own hub, so the grid fans across a worker pool; results
	// are consumed in input order, making the report byte-identical at any
	// worker count.
	type flitPoint struct {
		mode flitnet.Mode
		load float64
		hub  *obs.Hub
	}
	var points []flitPoint
	if !*noFlit {
		workers := parsweep.Workers(*parallel)
		shards := parsweep.Shards(*shardsFlag, workers)
		points = make([]flitPoint, len(flitModes)*len(flitLoads))
		err := parsweep.Run(workers, len(points), func(i int) error {
			mode, load := flitModes[i/len(flitLoads)], flitLoads[i%len(flitLoads)]
			h, err := runFlitPoint(mode, load, *cycles, *dense, shards)
			if err != nil {
				return err
			}
			points[i] = flitPoint{mode, load, h}
			return nil
		})
		if err != nil {
			fmt.Fprintln(stderr, "critpath:", err)
			return 1
		}
		for _, p := range points {
			if d := p.hub.Trace.Dropped(); d > 0 {
				fmt.Fprintf(stderr, "critpath: warning: flit %s load %.2f: trace dropped %d events; report is partial and skips reconciliation\n", p.mode, p.load, d)
				continue
			}
			if err := critpath.Reconcile(p.hub); err != nil {
				fmt.Fprintf(stderr, "critpath: flit %s load %.2f: reconciliation failed: %v\n", p.mode, p.load, err)
				return 1
			}
		}
	}

	// The per-scenario hubs above are fresh per run (reconciliation demands
	// it), so the timeline samples a separate pass: the same scenario
	// sequence into one shared hub, windows closing on the round clock.
	if *timelineOut != "" {
		tl, err := runTimeline(scenarios, *words, uint64(*timelineInterval))
		if err != nil {
			fmt.Fprintln(stderr, "critpath:", err)
			return 1
		}
		render := func(w io.Writer) error {
			if strings.HasSuffix(*timelineOut, ".csv") {
				return timeline.WriteCSV(w, tl)
			}
			return timeline.WriteJSON(w, tl)
		}
		if err := writeTo(*timelineOut, stdout, render); err != nil {
			fmt.Fprintln(stderr, "critpath:", err)
			return 1
		}
	}

	if *flowOut != "" {
		var src *obs.Hub
		for _, r := range runs {
			if r.name == *flowScenario {
				src = r.hub
			}
		}
		if src == nil {
			fmt.Fprintf(stderr, "critpath: -flow-scenario %q was not run (add it to -scenarios)\n", *flowScenario)
			return 1
		}
		if err := writeTo(*flowOut, stdout, func(w io.Writer) error {
			return critpath.WriteChromeFlow(w, src.Trace.Events())
		}); err != nil {
			fmt.Fprintln(stderr, "critpath:", err)
			return 1
		}
	}

	if *jsonOut {
		doc := struct {
			Scenarios map[string]json.RawMessage `json:"scenarios"`
			Flit      []json.RawMessage          `json:"flit,omitempty"`
		}{Scenarios: make(map[string]json.RawMessage)}
		for _, r := range runs {
			js, err := critpath.JSON(r.a)
			if err != nil {
				fmt.Fprintln(stderr, "critpath:", err)
				return 1
			}
			doc.Scenarios[r.name] = js
		}
		for _, p := range points {
			js, err := critpath.JSON(critpath.Analyze(p.hub.Trace.Events()))
			if err != nil {
				fmt.Fprintln(stderr, "critpath:", err)
				return 1
			}
			wrapped, err := json.Marshal(struct {
				Mode   string          `json:"mode"`
				Load   float64         `json:"load"`
				Report json.RawMessage `json:"report"`
			}{p.mode.String(), p.load, js})
			if err != nil {
				fmt.Fprintln(stderr, "critpath:", err)
				return 1
			}
			doc.Flit = append(doc.Flit, wrapped)
		}
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "critpath:", err)
			return 1
		}
		fmt.Fprintln(stdout, string(out))
		return 0
	}

	for _, r := range runs {
		fmt.Fprintf(stdout, "== scenario %s (%d words) ==\n", r.name, *words)
		if err := critpath.WriteText(stdout, r.a); err != nil {
			fmt.Fprintln(stderr, "critpath:", err)
			return 1
		}
		fmt.Fprintln(stdout, "   (reconciled exactly against registry counters)")
		fmt.Fprintln(stdout)
	}
	for _, p := range points {
		a := critpath.Analyze(p.hub.Trace.Events())
		fmt.Fprintf(stdout, "== flit transit: %s routing, load %.2f ==\n", p.mode, p.load)
		if err := critpath.WriteText(stdout, a); err != nil {
			fmt.Fprintln(stderr, "critpath:", err)
			return 1
		}
		fmt.Fprintln(stdout, "   (reconciled exactly against registry counters)")
		fmt.Fprintln(stdout)
	}
	return 0
}

// runScenario runs one canonical scenario with span tracing into a fresh
// hub. The experiments observer is global state, so callers are serial.
func runScenario(name string, words int) (*obs.Hub, error) {
	h := obs.NewHub()
	experiments.SetObserver(h)
	defer experiments.SetObserver(nil)
	if _, err := experiments.RunCanonical(name, words); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return h, nil
}

// runTimeline runs the scenario sequence into one shared hub with a
// timeline sampler on the round clock and returns the reconciled timeline.
func runTimeline(scenarios []string, words int, interval uint64) (*timeline.Timeline, error) {
	h := obs.NewHub()
	sampler := timeline.New(h.Metrics, timeline.Config{Interval: interval})
	h.SetTickListener(sampler.Advance)
	experiments.SetObserver(h)
	defer experiments.SetObserver(nil)
	for _, name := range scenarios {
		if _, err := experiments.RunCanonical(name, words); err != nil {
			return nil, fmt.Errorf("timeline: %s: %w", name, err)
		}
	}
	// A scenario that never ticks the round clock (single-packet delivery)
	// still closes one window holding all its deltas.
	end := h.Round()
	if end == 0 {
		end = 1
	}
	sampler.Flush(end)
	// Window deltas must sum exactly to the final registry totals.
	if err := sampler.Reconcile(); err != nil {
		return nil, fmt.Errorf("timeline reconciliation: %w", err)
	}
	return sampler.Snapshot(), nil
}

// runFlitPoint runs one (mode, load) point of the transit grid on a fat
// tree, with a FlitScope capturing every worm's lifetime into its own hub.
func runFlitPoint(mode flitnet.Mode, load float64, cycles int, dense bool, shards int) (*obs.Hub, error) {
	topo, err := topology.NewFatTree(4, 2)
	if err != nil {
		return nil, err
	}
	net, err := flitnet.New(flitnet.Config{
		Topology: topo, Mode: mode,
		BufferFlits: 3, InjectQueue: 8,
		DenseReference: dense,
		Shards:         shards,
	})
	if err != nil {
		return nil, err
	}
	defer net.Close()
	h := obs.NewHub()
	net.SetFlitObserver(h.FlitScope())
	nodes := net.Nodes()
	gen, err := workload.NewGenerator(workload.Uniform{}, nodes, load, 1)
	if err != nil {
		return nil, err
	}
	for c := 0; c < cycles; c++ {
		for _, a := range gen.Cycle() {
			// Backpressured injections are part of the measurement.
			_ = net.Inject(network.Packet{
				Src: a.Src, Dst: a.Dst,
				Data: []network.Word{network.Word(c)},
			})
		}
		net.Tick(1)
	}
	net.TickUntilQuiet(200000)
	for node := 0; node < nodes; node++ {
		for {
			if _, ok := net.TryRecv(node); !ok {
				break
			}
		}
	}
	return h, nil
}

// writeTo renders into a file, or stdout for "-". A failed render removes
// the file rather than leaving a truncated dump behind.
func writeTo(dest string, stdout io.Writer, render func(io.Writer) error) error {
	if dest == "-" {
		return render(stdout)
	}
	f, err := os.Create(dest)
	if err != nil {
		return fmt.Errorf("writing %s: %w", dest, err)
	}
	err = render(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(dest)
		return fmt.Errorf("writing %s: %w", dest, err)
	}
	return nil
}
