package main

import (
	"strings"
	"testing"
)

// TestFlagValidationTable: explicitly-set non-positive shard counts error
// out with a clear message instead of being silently ignored.
func TestFlagValidationTable(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"zero shards", []string{"-shards", "0"}},
		{"negative shards", []string{"-shards", "-4"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errOut strings.Builder
			if code := run(c.args, &out, &errOut); code == 0 {
				t.Fatal("accepted non-positive shard count")
			}
			if !strings.Contains(errOut.String(), "must be a positive count") {
				t.Fatalf("unclear message: %q", errOut.String())
			}
		})
	}
}

// TestShardsLine: -shards is accepted for uniformity only, and the output
// says so the way netload reports its effective shard count.
func TestShardsLine(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-figure", "4", "-packets", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "# shards: 1") {
		t.Errorf("missing # shards line:\n%s", out.String())
	}
}
