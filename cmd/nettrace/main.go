// Command nettrace prints the paper's protocol step diagrams (Figures 3,
// 4, 5, and 7) as reconstructed from live protocol runs.
//
// Usage:
//
//	nettrace                 # all four figures
//	nettrace -figure 4       # one figure
//	nettrace -words 32       # transfer size for figures 3 and 5
//	nettrace -packets 6      # packet count for figures 4 and 7
//	nettrace -metrics m.txt  # dump the runs' metrics ("-" = stdout)
//	nettrace -trace-out t.json  # Chrome trace-event JSON of the runs
//	nettrace -timeline-out tl.json  # windowed metrics timeline (.csv for CSV)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"msglayer/internal/obs"
	"msglayer/internal/obs/timeline"
	"msglayer/internal/parsweep"
	"msglayer/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; factored out of main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nettrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	figure := fs.Int("figure", 0, "figure to trace (3, 4, 5, or 7); 0 = all")
	words := fs.Int("words", 8, "message size in words for figures 3 and 5")
	packets := fs.Int("packets", 4, "packet count for figures 4 and 7")
	metricsOut := fs.String("metrics", "", "dump the figure runs' metrics to a file (\"-\" = stdout)")
	traceOut := fs.String("trace-out", "", "dump a Chrome trace-event JSON of the figure runs (\"-\" = stdout)")
	timelineOut := fs.String("timeline-out", "",
		"sample the figure runs' metrics into windowed deltas on the machine-round clock and write the timeline (\"-\" = stdout; a .csv suffix selects CSV, otherwise JSON)")
	timelineInterval := fs.Int("timeline-interval", 16, "timeline window width in machine rounds")
	shardsFlag := fs.Int("shards", 0,
		"accepted for flag uniformity with the flit-level tools; the figure machines run on the word-level network, which has no sharded engine, so this flag has no effect")
	_ = shardsFlag // validated and reported, never consumed: no sharded engine here
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := parsweep.ValidatePositiveFlags(fs, "shards"); err != nil {
		fmt.Fprintln(stderr, "nettrace:", err)
		return 1
	}
	if *timelineInterval < 1 {
		fmt.Fprintln(stderr, "nettrace: -timeline-interval must be >= 1")
		return 2
	}

	// With -metrics/-trace-out/-timeline-out the figure machines attach a
	// hub, so the runs record full node scopes alongside the printed step
	// diagrams.
	var hub *obs.Hub
	if *metricsOut != "" || *traceOut != "" || *timelineOut != "" {
		hub = obs.NewHub()
		trace.SetObserver(hub)
		defer trace.SetObserver(nil)
	}
	// The timeline sampler rides the hub's round clock across all the
	// figure runs; windows close as the shared round counter crosses
	// interval boundaries.
	var sampler *timeline.Sampler
	if *timelineOut != "" {
		sampler = timeline.New(hub.Metrics, timeline.Config{Interval: uint64(*timelineInterval)})
		hub.SetTickListener(sampler.Advance)
	}

	runners := map[int]func() (trace.Trace, error){
		3: func() (trace.Trace, error) { return trace.Figure3(*words) },
		4: func() (trace.Trace, error) { return trace.Figure4(*packets) },
		5: func() (trace.Trace, error) { return trace.Figure5(*words) },
		7: func() (trace.Trace, error) { return trace.Figure7(*packets) },
	}
	order := []int{3, 4, 5, 7}
	if *figure != 0 {
		if _, ok := runners[*figure]; !ok {
			fmt.Fprintln(stderr, "nettrace: figures 3, 4, 5, and 7 are traceable")
			return 1
		}
		order = []int{*figure}
	}
	for _, f := range order {
		tr, err := runners[f]()
		if err != nil {
			fmt.Fprintf(stderr, "nettrace: figure %d: %v\n", f, err)
			return 1
		}
		fmt.Fprintln(stdout, tr)
	}
	fmt.Fprintln(stdout, "# shards: 1 (accepted for flag uniformity; the word-level figure machines have no sharded engine)")

	if hub != nil {
		if *metricsOut != "" {
			if err := writeTo(*metricsOut, stdout, hub.Metrics.WritePrometheus); err != nil {
				fmt.Fprintln(stderr, "nettrace:", err)
				return 1
			}
		}
		if *traceOut != "" {
			if err := writeTo(*traceOut, stdout, hub.Trace.WriteChromeTrace); err != nil {
				fmt.Fprintln(stderr, "nettrace:", err)
				return 1
			}
		}
		if sampler != nil {
			// A run that never ticked the round clock still closes one
			// window holding all its deltas.
			end := hub.Round()
			if end == 0 {
				end = 1
			}
			sampler.Flush(end)
			// Window deltas must sum exactly to the final registry totals.
			if err := sampler.Reconcile(); err != nil {
				fmt.Fprintln(stderr, "nettrace: timeline reconciliation:", err)
				return 1
			}
			tl := sampler.Snapshot()
			render := func(w io.Writer) error {
				if strings.HasSuffix(*timelineOut, ".csv") {
					return timeline.WriteCSV(w, tl)
				}
				return timeline.WriteJSON(w, tl)
			}
			if err := writeTo(*timelineOut, stdout, render); err != nil {
				fmt.Fprintln(stderr, "nettrace:", err)
				return 1
			}
		}
		if d := hub.Trace.Dropped(); d > 0 {
			fmt.Fprintf(stderr, "nettrace: warning: trace dropped %d events; exported traces are truncated\n", d)
		}
	}
	return 0
}

// writeTo renders into a file, or stdout for "-". A failed render or close
// removes the file rather than leaving a truncated dump behind.
func writeTo(dest string, stdout io.Writer, render func(io.Writer) error) error {
	if dest == "-" {
		return render(stdout)
	}
	f, err := os.Create(dest)
	if err != nil {
		return fmt.Errorf("writing %s: %w", dest, err)
	}
	err = render(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(dest)
		return fmt.Errorf("writing %s: %w", dest, err)
	}
	return nil
}
