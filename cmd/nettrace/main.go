// Command nettrace prints the paper's protocol step diagrams (Figures 3,
// 4, 5, and 7) as reconstructed from live protocol runs.
//
// Usage:
//
//	nettrace                 # all four figures
//	nettrace -figure 4       # one figure
//	nettrace -words 32       # transfer size for figures 3 and 5
//	nettrace -packets 6      # packet count for figures 4 and 7
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"msglayer/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; factored out of main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nettrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	figure := fs.Int("figure", 0, "figure to trace (3, 4, 5, or 7); 0 = all")
	words := fs.Int("words", 8, "message size in words for figures 3 and 5")
	packets := fs.Int("packets", 4, "packet count for figures 4 and 7")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	runners := map[int]func() (trace.Trace, error){
		3: func() (trace.Trace, error) { return trace.Figure3(*words) },
		4: func() (trace.Trace, error) { return trace.Figure4(*packets) },
		5: func() (trace.Trace, error) { return trace.Figure5(*words) },
		7: func() (trace.Trace, error) { return trace.Figure7(*packets) },
	}
	order := []int{3, 4, 5, 7}
	if *figure != 0 {
		if _, ok := runners[*figure]; !ok {
			fmt.Fprintln(stderr, "nettrace: figures 3, 4, 5, and 7 are traceable")
			return 1
		}
		order = []int{*figure}
	}
	for _, f := range order {
		tr, err := runners[f]()
		if err != nil {
			fmt.Fprintf(stderr, "nettrace: figure %d: %v\n", f, err)
			return 1
		}
		fmt.Fprintln(stdout, tr)
	}
	return 0
}
