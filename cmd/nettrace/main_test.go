package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunAllFigures(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"Figure 3", "Figure 4", "Figure 5", "Figure 7",
		"allocation request", "buffer message for retransmission"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunOneFigure(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-figure", "5", "-words", "12"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Figure 5") || strings.Contains(out.String(), "Figure 3") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunBadFigure(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-figure", "6"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errOut.String(), "traceable") {
		t.Errorf("stderr: %s", errOut.String())
	}
}

// TestObsNettraceMetricsAndTrace exercises -metrics/-trace-out: the figure
// machines attach the hub, so the dumps carry protocol packet counters and
// trace events, and the step diagrams are unchanged by observation.
func TestObsNettraceMetricsAndTrace(t *testing.T) {
	var plain, plainErr strings.Builder
	if code := run(nil, &plain, &plainErr); code != 0 {
		t.Fatalf("exit %d: %s", code, plainErr.String())
	}

	dir := t.TempDir()
	mPath := filepath.Join(dir, "m.txt")
	tPath := filepath.Join(dir, "t.json")
	var out, errOut strings.Builder
	if code := run([]string{"-metrics", mPath, "-trace-out", tPath}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if out.String() != plain.String() {
		t.Error("step diagrams differ when observed")
	}
	md, err := os.ReadFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"msglayer_packets_sent_total", "msglayer_run_rounds_total"} {
		if !strings.Contains(string(md), want) {
			t.Errorf("metrics missing %s:\n%.1000s", want, md)
		}
	}
	td, err := os.ReadFile(tPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(td, &doc); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace is empty")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d", code)
	}
}

// TestObsNettraceTimeline exercises -timeline-out: the figure runs ride a
// sampled hub, the export reconciles (the writer refuses otherwise), and a
// .csv suffix selects the CSV form.
func TestObsNettraceTimeline(t *testing.T) {
	dir := t.TempDir()
	tlPath := filepath.Join(dir, "tl.json")
	var out, errOut strings.Builder
	if code := run([]string{"-timeline-out", tlPath, "-timeline-interval", "8"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	data, err := os.ReadFile(tlPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Interval uint64                   `json:"interval"`
		Windows  []map[string]interface{} `json:"windows"`
		Digest   string                   `json:"digest"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("timeline does not parse: %v", err)
	}
	if doc.Interval != 8 || len(doc.Windows) == 0 || doc.Digest == "" {
		t.Fatalf("timeline missing fields: interval=%d windows=%d digest=%q", doc.Interval, len(doc.Windows), doc.Digest)
	}

	csvPath := filepath.Join(dir, "tl.csv")
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-figure", "4", "-timeline-out", csvPath}, &out, &errOut); code != 0 {
		t.Fatalf("csv exit %d: %s", code, errOut.String())
	}
	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "window,start,end") {
		t.Fatalf("csv header: %.100s", csv)
	}

	// A bad interval is a usage error before any run happens.
	if code := run([]string{"-timeline-out", "-", "-timeline-interval", "0"}, &out, &errOut); code != 2 {
		t.Fatalf("interval 0 exited %d, want 2", code)
	}
}
