package main

import (
	"strings"
	"testing"
)

func TestRunAllFigures(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"Figure 3", "Figure 4", "Figure 5", "Figure 7",
		"allocation request", "buffer message for retransmission"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunOneFigure(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-figure", "5", "-words", "12"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Figure 5") || strings.Contains(out.String(), "Figure 3") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunBadFigure(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-figure", "6"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errOut.String(), "traceable") {
		t.Errorf("stderr: %s", errOut.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d", code)
	}
}
