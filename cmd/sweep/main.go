// Command sweep evaluates the generalized cost model (the paper's Figure 8)
// over packet sizes, message sizes, out-of-order fractions, and
// acknowledgement group sizes, printing a table or CSV.
//
// Usage:
//
//	sweep                                  # Figure 8 right: 1024 words, n = 4..128
//	sweep -words 4096 -sizes 4,8,16        # custom sweep
//	sweep -protocol finite-cr              # any of the four protocols
//	sweep -ackgroup 8 -ooo 0.25            # indefinite-protocol knobs
//	sweep -csv                             # machine-readable output
//	sweep -metrics m.txt                   # dump per-point cost metrics ("-" = stdout)
//	sweep -trace-out t.json                # Chrome trace with one span per point
//	sweep -cpuprofile cpu.out              # pprof CPU profile of the sweep
//	sweep -memprofile mem.out              # pprof allocation profile at exit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"msglayer/internal/analytic"
	"msglayer/internal/cost"
	"msglayer/internal/experiments"
	"msglayer/internal/obs"
	"msglayer/internal/parsweep"
	"msglayer/internal/prof"
	"msglayer/internal/report"
)

var protocols = map[string]analytic.Protocol{
	"finite":        analytic.ProtoFiniteCMAM,
	"indefinite":    analytic.ProtoIndefiniteCMAM,
	"finite-cr":     analytic.ProtoFiniteCR,
	"indefinite-cr": analytic.ProtoIndefiniteCR,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; factored out of main for testing.
func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	words := fs.Int("words", 1024, "message size in words")
	sizesArg := fs.String("sizes", "4,8,16,32,64,128", "comma-separated packet payload sizes")
	protoArg := fs.String("protocol", "", "protocol: finite, indefinite, finite-cr, indefinite-cr (default: finite and indefinite)")
	ooo := fs.Float64("ooo", 0.5, "fraction of packets arriving out of order (indefinite protocols)")
	ackGroup := fs.Int("ackgroup", 1, "acknowledgement group size (indefinite CMAM)")
	parallel := fs.Int("parallel", 0, "worker goroutines for the sweep (0 = GOMAXPROCS, 1 = serial)")
	shardsFlag := fs.Int("shards", 0,
		"accepted for flag uniformity with the flit-level tools; the sweep's protocol points run on the word-level network, which has no sharded engine, so this flag has no effect")
	_ = shardsFlag // validated and reported, never consumed: no sharded engine here
	twinCol := fs.Bool("twin", false,
		"run each point on the real simulator too and append sim-total and twin-err% columns (predicted vs measured; requires -ooo 0.5, the stream substrate's actual reorder fraction)")
	csv := fs.Bool("csv", false, "emit CSV")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
	memProfile := fs.String("memprofile", "", "write a pprof allocation profile to this file at exit")
	metricsOut := fs.String("metrics", "", "dump the per-point cost metrics to a file (\"-\" = stdout)")
	traceOut := fs.String("trace-out", "", "dump a Chrome trace-event JSON, one span per sweep point (\"-\" = stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := parsweep.ValidatePositiveFlags(fs, "parallel", "shards"); err != nil {
		fmt.Fprintln(stderr, "sweep:", err)
		return 1
	}
	if *twinCol && *ooo != 0.5 {
		fmt.Fprintln(stderr, "sweep: -twin compares against the simulator, whose stream substrate delivers exactly half the packets out of order; rerun with -ooo 0.5")
		return 1
	}

	sizes, err := parseSizes(*sizesArg)
	if err != nil {
		fmt.Fprintln(stderr, "sweep:", err)
		return 1
	}
	// Profiles cover the whole run and finalize on every exit path; a
	// profile that cannot be written is reported and removed, never left
	// truncated.
	if *cpuProfile != "" {
		stop, err := prof.StartCPU(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "sweep:", err)
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(stderr, "sweep:", err)
				code = 1
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			if err := prof.WriteHeap(*memProfile); err != nil {
				fmt.Fprintln(stderr, "sweep:", err)
				code = 1
			}
		}()
	}
	var selected []analytic.Protocol
	if *protoArg == "" {
		selected = []analytic.Protocol{analytic.ProtoIndefiniteCMAM, analytic.ProtoFiniteCMAM}
	} else {
		p, ok := protocols[*protoArg]
		if !ok {
			fmt.Fprintf(stderr, "sweep: unknown protocol %q\n", *protoArg)
			return 1
		}
		selected = []analytic.Protocol{p}
	}
	var names []string
	for _, p := range selected {
		names = append(names, p.String()+" total", p.String()+" overhead")
		if *twinCol {
			names = append(names, p.String()+" sim total", p.String()+" twin-err%")
		}
	}
	// protoName recovers the CLI name of a protocol for the simulator side
	// of the -twin comparison.
	protoName := func(p analytic.Protocol) string {
		for name, pp := range protocols {
			if pp == p {
				return name
			}
		}
		return ""
	}

	// Every packet size evaluates independently against its own schedule, so
	// the sweep fans across a worker pool; Map reassembles points in input
	// order, keeping the table identical at any worker count.
	points, err := parsweep.Map(parsweep.Workers(*parallel), len(sizes),
		func(i int) (report.SeriesPoint, error) {
			n := sizes[i]
			sched, err := cost.NewPaperSchedule(n)
			if err != nil {
				return report.SeriesPoint{}, err
			}
			p := analytic.Packets(sched, *words)
			prm := analytic.Params{
				MessageWords: *words,
				OutOfOrder:   int(*ooo * float64(p)),
				AckGroup:     *ackGroup,
			}
			var values []float64
			for _, proto := range selected {
				b, err := analytic.Evaluate(proto, sched, prm)
				if err != nil {
					return report.SeriesPoint{}, err
				}
				values = append(values, float64(b.Total().Total()), b.Overhead())
				if *twinCol {
					cells, err := experiments.RunProtocol(protoName(proto), *words, n, *ackGroup)
					if err != nil {
						return report.SeriesPoint{}, err
					}
					sim := float64(cells.Total().Total())
					errPct := 0.0
					if sim != 0 {
						errPct = (float64(b.Total().Total()) - sim) / sim * 100
					}
					values = append(values, sim, errPct)
				}
			}
			return report.SeriesPoint{X: n, Values: values}, nil
		})
	if err != nil {
		fmt.Fprintln(stderr, "sweep:", err)
		return 1
	}

	// The analytic grid records into a hub like the simulator sweeps do:
	// one registry series per (protocol, packet size) and one trace span
	// per point, consumed in input order so dumps are byte-identical at
	// any worker count.
	if *metricsOut != "" || *traceOut != "" {
		hub := obs.NewHub()
		for i, pt := range points {
			n := sizes[i]
			for pi, proto := range selected {
				key := func(name string) obs.Key {
					return obs.Key{Name: name, Node: -1, Proto: proto.String(), Event: fmt.Sprintf("n%d", n)}
				}
				hub.Metrics.Level(key("sweep_cost_total_instr")).Set(int64(pt.Values[2*pi]))
				// The registry is integer-valued; overhead keeps permille.
				hub.Metrics.Level(key("sweep_overhead_permille")).Set(int64(pt.Values[2*pi+1] * 1000))
				hub.Trace.Record(obs.TraceEvent{
					TS:    hub.Trace.Now() + 1,
					Node:  -1,
					Name:  fmt.Sprintf("sweep.%s.n%d", proto, n),
					Proto: proto.String(),
					Axis:  obs.AxisOther,
					Dur:   uint64(pt.Values[2*pi]),
					Phase: obs.PhaseComplete,
				})
			}
		}
		if *metricsOut != "" {
			if err := writeTo(*metricsOut, stdout, hub.Metrics.WritePrometheus); err != nil {
				fmt.Fprintln(stderr, "sweep:", err)
				return 1
			}
		}
		if *traceOut != "" {
			if err := writeTo(*traceOut, stdout, hub.Trace.WriteChromeTrace); err != nil {
				fmt.Fprintln(stderr, "sweep:", err)
				return 1
			}
		}
		if d := hub.Trace.Dropped(); d > 0 {
			fmt.Fprintf(stderr, "sweep: warning: trace dropped %d events; exported traces are truncated\n", d)
		}
	}

	title := fmt.Sprintf("Messaging cost vs packet size: %d-word message, ooo=%.2f, ack group %d",
		*words, *ooo, *ackGroup)
	if *csv {
		fmt.Fprint(stdout, report.CSV("packet_words", names, points))
		return 0
	}
	fmt.Fprint(stdout, report.Series(title, "n", names, points))
	fmt.Fprintln(stdout, "# shards: 1 (accepted for flag uniformity; the word-level protocol network has no sharded engine)")
	return 0
}

// writeTo renders into a file, or stdout for "-". A failed render or close
// removes the file rather than leaving a truncated dump behind.
func writeTo(dest string, stdout io.Writer, render func(io.Writer) error) error {
	if dest == "-" {
		return render(stdout)
	}
	f, err := os.Create(dest)
	if err != nil {
		return fmt.Errorf("writing %s: %w", dest, err)
	}
	err = render(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(dest)
		return fmt.Errorf("writing %s: %w", dest, err)
	}
	return nil
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad packet size %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packet sizes")
	}
	return out, nil
}
