package main

import (
	"strings"
	"testing"
)

// TestFlagValidationTable: explicitly-set non-positive pool sizes error out
// with a clear message instead of silently falling back to auto-sizing.
func TestFlagValidationTable(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"zero parallel", []string{"-parallel", "0"}},
		{"negative parallel", []string{"-parallel", "-2"}},
		{"zero shards", []string{"-shards", "0"}},
		{"negative shards", []string{"-shards", "-1"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errOut strings.Builder
			if code := run(c.args, &out, &errOut); code == 0 {
				t.Fatal("accepted non-positive pool size")
			}
			if !strings.Contains(errOut.String(), "must be a positive count") {
				t.Fatalf("unclear message: %q", errOut.String())
			}
		})
	}
}

// TestShardsLine: -shards is accepted for uniformity only, and the report
// says so the way netload reports its effective shard count.
func TestShardsLine(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-sizes", "4", "-words", "16"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "# shards: 1") {
		t.Errorf("missing # shards line:\n%s", out.String())
	}
}

// TestTwinColumn: -twin runs each point on the real simulator and the
// analytic prediction matches it exactly.
func TestTwinColumn(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-twin", "-sizes", "4,16", "-words", "64"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"sim total", "twin-err%"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// Data rows: n, then (total, overhead, sim total, twin-err%) per
	// protocol; every twin-err% field must be exactly zero.
	for _, line := range strings.Split(s, "\n") {
		f := strings.Fields(line)
		if len(f) != 9 || !strings.Contains(f[0], "") {
			continue
		}
		if _, err := parseSizes(f[0]); err != nil {
			continue
		}
		for _, fi := range []int{4, 8} {
			if f[fi] != "0.0000" {
				t.Errorf("nonzero twin error %s in row: %s", f[fi], line)
			}
		}
	}
}

// TestTwinRequiresHalfOOO: the simulator's stream substrate reorders
// exactly half the packets; other -ooo values cannot be simulated.
func TestTwinRequiresHalfOOO(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-twin", "-ooo", "0.25"}, &out, &errOut); code == 0 {
		t.Fatal("accepted -twin with -ooo 0.25")
	}
	if !strings.Contains(errOut.String(), "-ooo 0.5") {
		t.Fatalf("unclear message: %q", errOut.String())
	}
}
