package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultSweep(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"indefinite (CMAM) total", "finite (CMAM) overhead", "128", "29965"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunCSV(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-csv", "-protocol", "finite-cr", "-sizes", "4,8"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "packet_words,finite (CR) total") {
		t.Errorf("header = %q", lines[0])
	}
	// The CR protocol's overhead is near zero at every point.
	if !strings.Contains(lines[1], ",0.0") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestRunKnobs(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-ooo", "0", "-ackgroup", "16", "-words", "64", "-sizes", "4"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "ooo=0.00") || !strings.Contains(out.String(), "ack group 16") {
		t.Errorf("title missing knobs:\n%s", out.String())
	}
}

func TestRunParallelMatchesSerial(t *testing.T) {
	runWith := func(workers string) string {
		var out, errOut strings.Builder
		code := run([]string{"-sizes", "4,8,16,32,64,128", "-parallel", workers}, &out, &errOut)
		if code != 0 {
			t.Fatalf("-parallel %s: exit %d: %s", workers, code, errOut.String())
		}
		return out.String()
	}
	if serial, par := runWith("1"), runWith("8"); serial != par {
		t.Errorf("output differs between -parallel 1 and -parallel 8:\n--- serial ---\n%s--- parallel ---\n%s", serial, par)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-protocol", "nope"}, &out, &errOut); code != 1 {
		t.Errorf("unknown protocol exit %d", code)
	}
	errOut.Reset()
	if code := run([]string{"-sizes", "x"}, &out, &errOut); code != 1 {
		t.Errorf("bad sizes exit %d", code)
	}
	if code := run([]string{"-sizes", "3"}, &out, &errOut); code != 1 {
		t.Errorf("odd size exit %d", code)
	}
	if code := run([]string{"-junk"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag exit %d", code)
	}
}

// TestProfileFlags exercises -cpuprofile/-memprofile: both files must exist
// and be non-empty after a successful run, and an unwritable path must fail
// the run without leaving a partial file.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpuPath := filepath.Join(dir, "cpu.out")
	memPath := filepath.Join(dir, "mem.out")
	var out, errOut strings.Builder
	code := run([]string{"-sizes", "4,8", "-cpuprofile", cpuPath, "-memprofile", memPath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, p := range []string{cpuPath, memPath} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}

	if code := run([]string{"-sizes", "4", "-cpuprofile", filepath.Join(dir, "no", "cpu.out")}, &out, &errOut); code != 1 {
		t.Errorf("unwritable -cpuprofile exit %d, want 1", code)
	}
	badMem := filepath.Join(dir, "no", "mem.out")
	if code := run([]string{"-sizes", "4", "-memprofile", badMem}, &out, &errOut); code != 1 {
		t.Errorf("unwritable -memprofile exit %d, want 1", code)
	}
	if _, err := os.Stat(badMem); !os.IsNotExist(err) {
		t.Error("partial memprofile left behind")
	}
}

// TestObsSweepMetricsAndTrace exercises -metrics/-trace-out: every
// (protocol, packet size) point must land in the dump, byte-identically
// across worker counts.
func TestObsSweepMetricsAndTrace(t *testing.T) {
	render := func(workers string) (string, string) {
		dir := t.TempDir()
		mPath := filepath.Join(dir, "m.txt")
		tPath := filepath.Join(dir, "t.json")
		var out, errOut strings.Builder
		code := run([]string{"-sizes", "8,32", "-metrics", mPath, "-trace-out", tPath,
			"-parallel", workers}, &out, &errOut)
		if code != 0 {
			t.Fatalf("exit %d: %s", code, errOut.String())
		}
		m, err := os.ReadFile(mPath)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := os.ReadFile(tPath)
		if err != nil {
			t.Fatal(err)
		}
		return string(m), string(tr)
	}
	metrics, trace := render("1")
	for _, want := range []string{
		`msglayer_sweep_cost_total_instr{proto="finite (CMAM)",event="n8"}`,
		`msglayer_sweep_cost_total_instr{proto="indefinite (CMAM)",event="n32"}`,
		`msglayer_sweep_overhead_permille`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %s:\n%s", want, metrics)
		}
	}
	if !strings.Contains(trace, "sweep.finite (CMAM).n8") {
		t.Errorf("trace missing per-point span:\n%.500s", trace)
	}
	if m8, t8 := render("8"); m8 != metrics || t8 != trace {
		t.Error("dumps differ between -parallel 1 and -parallel 8")
	}
}
