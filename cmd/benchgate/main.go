// Command benchgate records and gates performance snapshots: the
// BENCH_PR<k>.json trajectory every PR is judged against.
//
// Record mode runs the canonical scenarios (single-packet, finite and
// indefinite CM-5/CR transfers, one flit-level netload sweep point) N times
// and writes a schema-versioned snapshot of the deterministic simulation
// metrics (instruction costs per role × feature × category, rounds, packet
// counts, flit stats) and the host metrics (wall clock, allocations).
//
// Compare mode gates a new snapshot against an old one: sim metrics must
// match exactly (any instruction-count drift fails), allocation benchmarks
// must not grow their allocs/op, and host metrics may regress up to a
// threshold unless the change is statistically insignificant (Welch's
// t-test). Host metrics only gate between snapshots recorded at the same
// -parallel count. Exit status 0 means the gate passed, 1 means it failed
// or errored, 2 means bad usage.
//
// Usage:
//
//	benchgate -record BENCH_PR2.json -label PR2        # write a snapshot
//	benchgate -record out.json -n 10 -words 128        # heavier recording
//	benchgate -record out.json -parallel 1             # serial reps (comparable host numbers)
//	benchgate -compare BENCH_PR2.json fresh.json       # full gate
//	benchgate -compare -sim-only old.json new.json     # CI: exact sim gate only
//	benchgate -compare -threshold 0.2 -alpha 0.01 old.json new.json
//
// Flags must precede the snapshot paths (standard library flag parsing).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"msglayer/internal/obs/diff"
	"msglayer/internal/parsweep"
	"msglayer/internal/perfreg"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; factored out of main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	record := fs.String("record", "", "record a snapshot to this path")
	label := fs.String("label", "", "label stored in the recorded snapshot")
	n := fs.Int("n", 5, "timed repetitions per scenario when recording")
	words := fs.Int("words", 64, "protocol transfer size in words when recording")
	netloadCycles := fs.Int("netload-cycles", 1000, "flit-level measurement cycles when recording")
	parallel := fs.Int("parallel", 0,
		"worker goroutines for the timed repetitions (0 = GOMAXPROCS, 1 = serial); host metrics only gate between snapshots recorded at the same count")
	noBenches := fs.Bool("no-benches", false, "skip the allocation benchmarks when recording")
	compare := fs.Bool("compare", false, "compare two snapshots: benchgate -compare old.json new.json")
	threshold := fs.Float64("threshold", 0.10, "fractional host-metric regression that fails the gate")
	alpha := fs.Float64("alpha", 0.05, "significance level a host regression must reach to fail")
	simOnly := fs.Bool("sim-only", false, "gate only the deterministic metrics — sim counts and bench allocs/op (CI mode)")
	jsonOut := fs.Bool("json", false, "with -compare, emit the machine-readable result (verdict, failing keys, diff attribution)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "benchgate: record and gate performance snapshots")
		fmt.Fprintln(stderr, "  benchgate -record out.json [-label L] [-n 5] [-words 64] [-netload-cycles 1000] [-parallel 0] [-no-benches]")
		fmt.Fprintln(stderr, "  benchgate -compare [-threshold 0.10] [-alpha 0.05] [-sim-only] [-json] old.json new.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := parsweep.ValidatePositiveFlags(fs, "parallel"); err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 1
	}

	switch {
	case *record != "" && *compare:
		fmt.Fprintln(stderr, "benchgate: -record and -compare are mutually exclusive")
		return 2
	case *jsonOut && !*compare:
		fmt.Fprintln(stderr, "benchgate: -json only applies to -compare")
		return 2
	case *record != "":
		return doRecord(perfreg.RecordConfig{
			Label:         *label,
			Reps:          *n,
			Words:         *words,
			NetloadCycles: *netloadCycles,
			Parallel:      *parallel,
			SkipBenches:   *noBenches,
			Timestamp:     time.Now().UTC().Format(time.RFC3339),
		}, *record, stdout, stderr)
	case *compare:
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "benchgate: -compare wants exactly two snapshot paths, got", fs.NArg())
			return 2
		}
		return doCompare(fs.Arg(0), fs.Arg(1), perfreg.CompareOptions{
			HostThreshold: *threshold,
			Alpha:         *alpha,
			SimOnly:       *simOnly,
		}, *jsonOut, stdout, stderr)
	}
	fs.Usage()
	return 2
}

// doRecord runs the harness and writes the snapshot.
func doRecord(cfg perfreg.RecordConfig, path string, stdout, stderr io.Writer) int {
	start := time.Now()
	snap, err := perfreg.Record(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 1
	}
	if err := snap.WriteFile(path); err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 1
	}
	fmt.Fprintf(stdout, "benchgate: recorded %d scenarios x %d reps (parallel %d) and %d benches to %s in %v\n",
		len(snap.Scenarios), snap.Reps, snap.Parallel, len(snap.Benches), path, time.Since(start).Round(time.Millisecond))
	return 0
}

// doCompare gates new against old and prints the verdict table (or, with
// jsonOut, the machine-readable result). When a deterministic gate fails,
// the diff engine attributes the regression — which cells moved, by how
// much, and their blame shares — instead of leaving a bare key list.
func doCompare(oldPath, newPath string, opt perfreg.CompareOptions, jsonOut bool, stdout, stderr io.Writer) int {
	oldSnap, err := perfreg.ReadFile(oldPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 1
	}
	newSnap, err := perfreg.ReadFile(newPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 1
	}
	rep, err := perfreg.Compare(oldSnap, newSnap, opt)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 1
	}
	attribution := simAttribution(rep, oldSnap, newSnap)

	if jsonOut {
		doc := struct {
			Old         snapshotRef     `json:"old"`
			New         snapshotRef     `json:"new"`
			Pass        bool            `json:"pass"`
			SimChecked  int             `json:"sim_checked"`
			SimEqual    int             `json:"sim_equal"`
			Failing     []perfreg.Delta `json:"failing,omitempty"`
			Attribution *diff.Report    `json:"attribution,omitempty"`
		}{
			Old:        snapshotRef{Path: oldPath, Label: oldSnap.Label},
			New:        snapshotRef{Path: newPath, Label: newSnap.Label},
			Pass:       rep.Pass,
			SimChecked: rep.SimChecked,
			SimEqual:   rep.SimEqual,
			Failing:    rep.Failing(),
		}
		doc.Attribution = attribution
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "benchgate:", err)
			return 1
		}
		fmt.Fprintln(stdout, string(out))
		if !rep.Pass {
			return 1
		}
		return 0
	}

	fmt.Fprintf(stdout, "benchgate: %q (%s) vs %q (%s)\n",
		oldSnap.Label, oldPath, newSnap.Label, newPath)
	fmt.Fprint(stdout, rep.String())
	if attribution != nil {
		fmt.Fprintf(stdout, "\n-- differential attribution (obsdiff) --\n")
		if err := diff.WriteText(stdout, attribution); err != nil {
			fmt.Fprintln(stderr, "benchgate:", err)
			return 1
		}
	}
	if !rep.Pass {
		return 1
	}
	return 0
}

// snapshotRef identifies one compared snapshot in the JSON result.
type snapshotRef struct {
	Path  string `json:"path"`
	Label string `json:"label"`
}

// simAttribution runs the diff engine over the snapshots when a
// deterministic gate failed — the failures the engine can explain exactly.
// Host-metric failures are noise-gated elsewhere and get no attribution.
func simAttribution(rep *perfreg.Report, oldSnap, newSnap *perfreg.Snapshot) *diff.Report {
	deterministic := false
	for _, d := range rep.Failing() {
		if d.Kind == "sim" || d.Kind == "bench" {
			deterministic = true
			break
		}
	}
	if !deterministic {
		return nil
	}
	return diff.ComparePerfreg(oldSnap, newSnap)
}
