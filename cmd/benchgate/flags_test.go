package main

import (
	"strings"
	"testing"
)

// TestFlagValidationTable: explicitly-set non-positive worker counts error
// out with a clear message instead of silently falling back to auto-sizing.
func TestFlagValidationTable(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"zero parallel", []string{"-record", "out.json", "-parallel", "0"}},
		{"negative parallel", []string{"-record", "out.json", "-parallel", "-2"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errOut strings.Builder
			if code := run(c.args, &out, &errOut); code == 0 {
				t.Fatal("accepted non-positive worker count")
			}
			if !strings.Contains(errOut.String(), "must be a positive count") {
				t.Fatalf("unclear message: %q", errOut.String())
			}
		})
	}
}
