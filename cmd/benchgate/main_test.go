package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"msglayer/internal/perfreg"
)

// record runs the tool in record mode with tiny parameters.
func record(t *testing.T, path string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	args := []string{"-record", path, "-label", "t", "-n", "2", "-words", "16", "-netload-cycles", "100"}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("benchgate %v exited %d: %s", args, code, stderr.String())
	}
}

func TestBenchgateIdenticalSeedSnapshotsPass(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	// Two independent recordings of the same seeds and sizes.
	record(t, a)
	record(t, b)

	var stdout, stderr bytes.Buffer
	// Sim metrics must be identical across recordings; host timing is
	// noisy, so the determinism claim is gated sim-only.
	code := run([]string{"-compare", "-sim-only", a, b}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("identical-seed compare exited %d:\n%s%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "verdict: PASS") {
		t.Fatalf("no PASS verdict:\n%s", out)
	}
	if strings.Contains(out, "DRIFT") {
		t.Fatalf("identical-seed snapshots drifted:\n%s", out)
	}
}

func TestBenchgateInjectedRegressionFails(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	record(t, a)

	snap, err := perfreg.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	// Inject a +20% instruction-cost regression into every scenario's
	// totals.
	for i := range snap.Scenarios {
		for k, v := range snap.Scenarios[i].Sim {
			if strings.HasSuffix(k, "/total") || strings.HasSuffix(k, "flit_moves") {
				snap.Scenarios[i].Sim[k] = v * 12 / 10
			}
		}
	}
	bad := filepath.Join(dir, "bad.json")
	if err := snap.WriteFile(bad); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	code := run([]string{"-compare", "-sim-only", a, bad}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("+20%% regression passed the gate:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "verdict: FAIL") {
		t.Fatalf("no FAIL verdict:\n%s", stdout.String())
	}
}

func TestBenchgateUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-compare", "only-one.json"},
		{"-record", "x.json", "-compare"},
		{"-bogus"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("benchgate %v exited %d, want 2", args, code)
		}
	}
	// Missing snapshot files are runtime errors, not usage errors.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-compare", "/nonexistent/a.json", "/nonexistent/b.json"}, &stdout, &stderr); code != 1 {
		t.Errorf("missing files exited %d, want 1", code)
	}
}
