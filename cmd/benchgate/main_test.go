package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"msglayer/internal/obs/diff"
	"msglayer/internal/perfreg"
)

// record runs the tool in record mode with tiny parameters.
func record(t *testing.T, path string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	args := []string{"-record", path, "-label", "t", "-n", "2", "-words", "16", "-netload-cycles", "100"}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("benchgate %v exited %d: %s", args, code, stderr.String())
	}
}

func TestBenchgateIdenticalSeedSnapshotsPass(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	// Two independent recordings of the same seeds and sizes.
	record(t, a)
	record(t, b)

	var stdout, stderr bytes.Buffer
	// Sim metrics must be identical across recordings; host timing is
	// noisy, so the determinism claim is gated sim-only.
	code := run([]string{"-compare", "-sim-only", a, b}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("identical-seed compare exited %d:\n%s%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "verdict: PASS") {
		t.Fatalf("no PASS verdict:\n%s", out)
	}
	if strings.Contains(out, "DRIFT") {
		t.Fatalf("identical-seed snapshots drifted:\n%s", out)
	}
}

func TestBenchgateInjectedRegressionFails(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	record(t, a)

	snap, err := perfreg.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	// Inject a +20% instruction-cost regression into every scenario's
	// totals.
	for i := range snap.Scenarios {
		for k, v := range snap.Scenarios[i].Sim {
			if strings.HasSuffix(k, "/total") || strings.HasSuffix(k, "flit_moves") {
				snap.Scenarios[i].Sim[k] = v * 12 / 10
			}
		}
	}
	bad := filepath.Join(dir, "bad.json")
	if err := snap.WriteFile(bad); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	code := run([]string{"-compare", "-sim-only", a, bad}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("+20%% regression passed the gate:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "verdict: FAIL") {
		t.Fatalf("no FAIL verdict:\n%s", stdout.String())
	}
}

// injectRegression shifts one instruction cell (and the recorded total,
// keeping the waterfall complete) in every scenario of a snapshot copy.
func injectRegression(t *testing.T, from, to string) {
	t.Helper()
	snap, err := perfreg.ReadFile(from)
	if err != nil {
		t.Fatal(err)
	}
	for i := range snap.Scenarios {
		sim := snap.Scenarios[i].Sim
		for k := range sim {
			if strings.HasPrefix(k, "instr/") && k != "instr/total" {
				sim[k] += 100
				sim["instr/total"] += 100
				break
			}
		}
	}
	if err := snap.WriteFile(to); err != nil {
		t.Fatal(err)
	}
}

func TestBenchgateFailureIncludesAttribution(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	record(t, a)
	bad := filepath.Join(dir, "bad.json")
	injectRegression(t, a, bad)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-compare", "-sim-only", a, bad}, &stdout, &stderr); code != 1 {
		t.Fatalf("injected regression exited %d, want 1:\n%s%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"verdict: FAIL", "-- differential attribution (obsdiff) --", "top movers", "instr/total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("failure output missing %q:\n%s", want, out)
		}
	}

	// A passing compare prints no attribution section.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-compare", "-sim-only", a, a}, &stdout, &stderr); code != 0 {
		t.Fatalf("self-compare exited %d:\n%s", code, stderr.String())
	}
	if strings.Contains(stdout.String(), "differential attribution") {
		t.Fatalf("passing compare printed an attribution section:\n%s", stdout.String())
	}
}

func TestBenchgateCompareJSON(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	record(t, a)
	bad := filepath.Join(dir, "bad.json")
	injectRegression(t, a, bad)

	type result struct {
		Old struct {
			Path  string `json:"path"`
			Label string `json:"label"`
		} `json:"old"`
		Pass        bool            `json:"pass"`
		SimChecked  int             `json:"sim_checked"`
		SimEqual    int             `json:"sim_equal"`
		Failing     []perfreg.Delta `json:"failing"`
		Attribution *diff.Report    `json:"attribution"`
	}

	runJSON := func(oldPath, newPath string, wantCode int) (result, string) {
		t.Helper()
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-compare", "-sim-only", "-json", oldPath, newPath}, &stdout, &stderr); code != wantCode {
			t.Fatalf("-json compare exited %d, want %d:\n%s", code, wantCode, stderr.String())
		}
		var res result
		if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
			t.Fatalf("-json output does not parse: %v\n%s", err, stdout.String())
		}
		return res, stdout.String()
	}

	pass, _ := runJSON(a, a, 0)
	if !pass.Pass || len(pass.Failing) != 0 || pass.Attribution != nil {
		t.Fatalf("self-compare JSON = pass=%v failing=%d attribution=%v", pass.Pass, len(pass.Failing), pass.Attribution)
	}
	if pass.SimChecked == 0 || pass.SimChecked != pass.SimEqual {
		t.Fatalf("self-compare sim counts = %d/%d", pass.SimEqual, pass.SimChecked)
	}
	if pass.Old.Path != a || pass.Old.Label != "t" {
		t.Fatalf("old ref = %+v", pass.Old)
	}

	fail, out1 := runJSON(a, bad, 1)
	if fail.Pass || len(fail.Failing) == 0 {
		t.Fatalf("regression JSON = pass=%v failing=%d", fail.Pass, len(fail.Failing))
	}
	for _, d := range fail.Failing {
		if d.OK {
			t.Fatalf("failing list contains a passing delta: %+v", d)
		}
	}
	if fail.Attribution == nil || fail.Attribution.Kind != "perfreg" || len(fail.Attribution.Sections) == 0 {
		t.Fatalf("regression JSON carries no attribution: %+v", fail.Attribution)
	}
	if err := fail.Attribution.Reconcile(); err != nil {
		t.Fatalf("embedded attribution does not reconcile: %v", err)
	}

	// The machine-readable result is deterministic.
	if _, out2 := runJSON(a, bad, 1); out1 != out2 {
		t.Fatal("-json output is not byte-identical across invocations")
	}

	// -json without -compare is a usage error.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-record", filepath.Join(dir, "x.json")}, &stdout, &stderr); code != 2 {
		t.Fatalf("-json with -record exited %d, want 2", code)
	}
}

func TestBenchgateUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-compare", "only-one.json"},
		{"-record", "x.json", "-compare"},
		{"-bogus"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("benchgate %v exited %d, want 2", args, code)
		}
	}
	// Missing snapshot files are runtime errors, not usage errors.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-compare", "/nonexistent/a.json", "/nonexistent/b.json"}, &stdout, &stderr); code != 1 {
		t.Errorf("missing files exited %d, want 1", code)
	}
}
