// Command obsmon evaluates declarative SLO rules against the telemetry
// stream and reports alert incidents with exact window provenance. It can
// replay a recorded timeline artifact (a single timeline or a netload
// timeline grid) or attach the monitor to a live canonical scenario, and
// the two paths produce byte-identical reports for the same windows.
//
// Usage:
//
//	obsmon -rules rules.yaml -timeline tl.json   # replay a recorded timeline
//	obsmon -rules canonical -timeline grid.json  # built-in rules, every grid point
//	obsmon -rules slo.json -scenario cm5-finite  # live run with the monitor attached
//	obsmon -format json -o report.json           # text (default), json, or csv
//	obsmon -fail-on any                          # exit 3 on any incident (default: open)
//
// Exit codes: 0 compliant, 1 runtime error, 2 flag error, 3 SLO violation
// per -fail-on.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"msglayer/internal/experiments"
	"msglayer/internal/obs"
	"msglayer/internal/obs/diff"
	"msglayer/internal/obs/monitor"
	"msglayer/internal/obs/monitor/blame"
	"msglayer/internal/obs/timeline"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; factored out of main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("obsmon", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rulesPath := fs.String("rules", "canonical",
		"SLO rules file (JSON or YAML), or \"canonical\" for the built-in rule set")
	timelinePath := fs.String("timeline", "",
		"recorded timeline artifact to replay (single timeline or netload grid JSON)")
	scenario := fs.String("scenario", "",
		"live canonical scenario to monitor: "+strings.Join(experiments.CanonicalScenarios(), ", "))
	words := fs.Int("words", 64, "transfer size in words for -scenario")
	interval := fs.Uint64("interval", 8, "sampling window width in cycles for -scenario")
	format := fs.String("format", "text", "report format: text, json, or csv")
	out := fs.String("o", "-", "report destination file (\"-\" = stdout)")
	failOn := fs.String("fail-on", "open",
		"exit 3 when: open (an alert is still firing), any (any incident fired), none (never)")
	noBlame := fs.Bool("no-blame", false, "skip the Role×Feature×Category blame snippet on opened alerts")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch *format {
	case "text", "json", "csv":
	default:
		fmt.Fprintf(stderr, "obsmon: -format must be text, json, or csv, got %q\n", *format)
		return 2
	}
	switch *failOn {
	case "open", "any", "none":
	default:
		fmt.Fprintf(stderr, "obsmon: -fail-on must be open, any, or none, got %q\n", *failOn)
		return 2
	}
	if (*timelinePath == "") == (*scenario == "") {
		fmt.Fprintln(stderr, "obsmon: exactly one of -timeline or -scenario is required")
		return 2
	}

	rules, err := monitor.LoadRules(*rulesPath)
	if err != nil {
		fmt.Fprintln(stderr, "obsmon:", err)
		return 1
	}

	var reports []*monitor.Report
	if *timelinePath != "" {
		reports, err = replayArtifact(*timelinePath, rules, *noBlame)
	} else {
		reports, err = runLive(*scenario, *words, *interval, rules, *noBlame)
	}
	if err != nil {
		fmt.Fprintln(stderr, "obsmon:", err)
		return 1
	}

	if err := writeReports(*out, stdout, *format, reports); err != nil {
		fmt.Fprintln(stderr, "obsmon:", err)
		return 1
	}

	violated := false
	for _, rep := range reports {
		switch *failOn {
		case "open":
			violated = violated || rep.Open > 0
		case "any":
			violated = violated || len(rep.Incidents) > 0
		}
	}
	if violated {
		fmt.Fprintf(stderr, "obsmon: SLO violated (-fail-on %s)\n", *failOn)
		return 3
	}
	return 0
}

// newMonitor builds a monitor over the rule set with blame wired unless
// suppressed.
func newMonitor(rules *monitor.RuleSet, noBlame bool) (*monitor.Monitor, error) {
	m, err := monitor.New(rules)
	if err != nil {
		return nil, err
	}
	if !noBlame {
		m.SetBlamer(blame.Compute)
	}
	return m, nil
}

// replayArtifact evaluates the rules against a recorded timeline artifact:
// one report for a single timeline, one per point (in sorted key order)
// for a netload grid.
func replayArtifact(path string, rules *monitor.RuleSet, noBlame bool) ([]*monitor.Report, error) {
	art, err := diff.LoadArtifact(path)
	if err != nil {
		return nil, err
	}
	replayOne := func(label string, tl *timeline.Timeline) (*monitor.Report, error) {
		m, err := newMonitor(rules, noBlame)
		if err != nil {
			return nil, err
		}
		if err := m.Replay(tl); err != nil {
			return nil, fmt.Errorf("%s: %w", label, err)
		}
		return m.Snapshot(label), nil
	}
	switch art.Kind {
	case "timeline":
		rep, err := replayOne(path, art.Timeline)
		if err != nil {
			return nil, err
		}
		return []*monitor.Report{rep}, nil
	case "timeline-grid":
		keys := make([]string, 0, len(art.Grid))
		for k := range art.Grid {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		reports := make([]*monitor.Report, 0, len(keys))
		for _, k := range keys {
			rep, err := replayOne(k, art.Grid[k])
			if err != nil {
				return nil, err
			}
			reports = append(reports, rep)
		}
		return reports, nil
	default:
		return nil, fmt.Errorf("%s: artifact kind %q carries no timeline (want a timeline or netload timeline grid)", path, art.Kind)
	}
}

// runLive attaches the monitor to a live canonical scenario and evaluates
// windows as they close.
func runLive(scenario string, words int, interval uint64, rules *monitor.RuleSet, noBlame bool) ([]*monitor.Report, error) {
	if interval == 0 {
		return nil, fmt.Errorf("-interval must be positive")
	}
	m, err := newMonitor(rules, noBlame)
	if err != nil {
		return nil, err
	}
	h := obs.NewHub()
	s := timeline.New(h.Metrics, timeline.Config{Interval: interval})
	m.Attach(s)
	h.SetTickListener(s.Advance)
	experiments.SetObserver(h)
	defer experiments.SetObserver(nil)
	if _, err := experiments.RunCanonical(scenario, words); err != nil {
		return nil, err
	}
	s.Flush(h.Round())
	return []*monitor.Report{m.Snapshot(scenario)}, nil
}

// writeReports renders every report into the destination. Text reports are
// concatenated with a blank line; JSON emits an array document; CSV shares
// one header with a leading label column.
func writeReports(dest string, stdout io.Writer, format string, reports []*monitor.Report) error {
	return writeDest(dest, stdout, func(w io.Writer) error {
		switch format {
		case "json":
			return monitor.WriteJSONReports(w, reports)
		case "csv":
			cw := csv.NewWriter(w)
			if err := cw.Write(monitor.CSVHeader("label")); err != nil {
				return err
			}
			for _, rep := range reports {
				if err := monitor.AppendCSV(cw, []string{rep.Label}, rep); err != nil {
					return err
				}
			}
			cw.Flush()
			return cw.Error()
		default:
			for i, rep := range reports {
				if i > 0 {
					if _, err := io.WriteString(w, "\n"); err != nil {
						return err
					}
				}
				if err := monitor.WriteText(w, rep); err != nil {
					return err
				}
			}
			return nil
		}
	})
}

// writeDest renders into a file, or stdout for "-". A failed render or
// close removes the file instead of leaving a truncated artifact.
func writeDest(dest string, stdout io.Writer, render func(io.Writer) error) error {
	if dest == "-" {
		return render(stdout)
	}
	f, err := os.Create(dest)
	if err != nil {
		return fmt.Errorf("writing %s: %w", dest, err)
	}
	err = render(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(dest)
		return fmt.Errorf("writing %s: %w", dest, err)
	}
	return nil
}
