package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"msglayer/internal/obs"
	"msglayer/internal/obs/monitor"
	"msglayer/internal/obs/timeline"
)

// writeRules drops a rules file into a temp dir.
func writeRules(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// tightRules fires on any scenario: no run sustains a million deliveries
// per kcycle.
const tightRules = `rules:
  - name: impossible-floor
    kind: rate
    severity: page
    match:
      prefix: net_delivered_total
    min: 1000000
`

// looseRules never fires.
const looseRules = `{"rules": [{"name": "roomy-ceiling", "kind": "rate",
  "match": {"prefix": "net_delivered_total"}, "max": 1000000000}]}`

// fixtureTimeline writes a recorded timeline with a violation that opens
// and closes again, so -fail-on open and any diverge.
func fixtureTimeline(t *testing.T) string {
	t.Helper()
	reg := obs.NewRegistry()
	c := reg.Counter(obs.Key{Name: "net_delivered_total", Node: -1, Proto: "fixture"})
	s := timeline.New(reg, timeline.Config{Interval: 10})
	for cycle := uint64(1); cycle <= 40; cycle++ {
		if cycle <= 10 || cycle > 20 {
			c.Add(2) // 200 per kcycle; the middle window stalls at 0
		}
		s.Advance(cycle)
	}
	s.Flush(40)
	data, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tl.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// closingRules opens on the stalled window and closes on recovery.
const closingRules = `rules:
  - name: floor
    kind: rate
    match:
      prefix: net_delivered_total
    min: 100
`

func runTool(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// TestObsmonLiveViolation: a firing rule exits 3 and the report names it.
func TestObsmonLiveViolation(t *testing.T) {
	rules := writeRules(t, "tight.yaml", tightRules)
	code, out, errOut := runTool(t, "-rules", rules, "-scenario", "cm5-finite", "-words", "64")
	if code != 3 {
		t.Fatalf("exit = %d, want 3; stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "rule impossible-floor") || !strings.Contains(out, "FIRING") {
		t.Fatalf("report missing firing rule:\n%s", out)
	}
	if !strings.Contains(errOut, "SLO violated") {
		t.Fatalf("stderr missing violation notice:\n%s", errOut)
	}
}

// TestObsmonLiveCompliant: a loose rule exits 0.
func TestObsmonLiveCompliant(t *testing.T) {
	rules := writeRules(t, "loose.json", looseRules)
	code, out, _ := runTool(t, "-rules", rules, "-scenario", "cm5-finite", "-words", "64")
	if code != 0 {
		t.Fatalf("exit = %d, want 0:\n%s", code, out)
	}
	if !strings.Contains(out, "0 incident(s), ok") {
		t.Fatalf("report missing compliant rule:\n%s", out)
	}
}

// TestObsmonFailOnPolicies: an incident that closes before the end exits 0
// under -fail-on open, 3 under any, 0 under none.
func TestObsmonFailOnPolicies(t *testing.T) {
	tl := fixtureTimeline(t)
	rules := writeRules(t, "closing.yaml", closingRules)
	for _, tc := range []struct {
		failOn string
		want   int
	}{{"open", 0}, {"any", 3}, {"none", 0}} {
		code, out, errOut := runTool(t, "-rules", rules, "-timeline", tl, "-fail-on", tc.failOn)
		if code != tc.want {
			t.Errorf("-fail-on %s exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
				tc.failOn, code, tc.want, out, errOut)
		}
	}
}

// TestObsmonReplayDeterminism: replaying the same timeline twice renders
// byte-identical reports in every format.
func TestObsmonReplayDeterminism(t *testing.T) {
	tl := fixtureTimeline(t)
	rules := writeRules(t, "closing.yaml", closingRules)
	for _, format := range []string{"text", "json", "csv"} {
		_, a, _ := runTool(t, "-rules", rules, "-timeline", tl, "-format", format, "-fail-on", "none")
		_, b, _ := runTool(t, "-rules", rules, "-timeline", tl, "-format", format, "-fail-on", "none")
		if a != b {
			t.Errorf("%s replay not deterministic:\n--- first ---\n%s\n--- second ---\n%s", format, a, b)
		}
		if a == "" {
			t.Errorf("%s replay produced no output", format)
		}
	}
}

// TestObsmonFormats: json parses with the incident present; csv has the
// label column and one incident row.
func TestObsmonFormats(t *testing.T) {
	tl := fixtureTimeline(t)
	rules := writeRules(t, "closing.yaml", closingRules)

	_, jsonOut, _ := runTool(t, "-rules", rules, "-timeline", tl, "-format", "json", "-fail-on", "none")
	var doc struct {
		Reports []*monitor.Report `json:"reports"`
	}
	if err := json.Unmarshal([]byte(jsonOut), &doc); err != nil {
		t.Fatalf("json output does not parse: %v\n%s", err, jsonOut)
	}
	if len(doc.Reports) != 1 || len(doc.Reports[0].Incidents) != 1 {
		t.Fatalf("json reports = %+v, want 1 report with 1 incident", doc.Reports)
	}
	if doc.Reports[0].Incidents[0].Open {
		t.Fatalf("incident should have closed on recovery: %+v", doc.Reports[0].Incidents[0])
	}

	_, csvOut, _ := runTool(t, "-rules", rules, "-timeline", tl, "-format", "csv", "-fail-on", "none")
	recs, err := csv.NewReader(strings.NewReader(csvOut)).ReadAll()
	if err != nil {
		t.Fatalf("csv output does not parse: %v\n%s", err, csvOut)
	}
	if len(recs) != 2 || recs[0][0] != "label" || recs[1][1] != "floor" {
		t.Fatalf("csv shape = %+v, want header + one floor incident row", recs)
	}
}

// TestObsmonOutputFile: -o writes the report to a file.
func TestObsmonOutputFile(t *testing.T) {
	tl := fixtureTimeline(t)
	rules := writeRules(t, "closing.yaml", closingRules)
	dest := filepath.Join(t.TempDir(), "report.txt")
	code, out, errOut := runTool(t, "-rules", rules, "-timeline", tl, "-fail-on", "none", "-o", dest)
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut)
	}
	if out != "" {
		t.Fatalf("stdout should be empty with -o: %q", out)
	}
	data, err := os.ReadFile(dest)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "# slo report:") {
		t.Fatalf("report file missing header:\n%s", data)
	}
}

// TestObsmonCanonicalRules: the built-in rule set loads by name.
func TestObsmonCanonicalRules(t *testing.T) {
	code, out, errOut := runTool(t, "-rules", "canonical", "-scenario", "single", "-fail-on", "none")
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut)
	}
	if !strings.Contains(out, "delivery-floor") {
		t.Fatalf("canonical report missing delivery-floor:\n%s", out)
	}
}

// TestObsmonErrors covers flag and input validation exits.
func TestObsmonErrors(t *testing.T) {
	tl := fixtureTimeline(t)
	rules := writeRules(t, "closing.yaml", closingRules)
	bad := writeRules(t, "bad.yaml", "rules:\n  - name: x\n    kind: nosuch\n")
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no-input", []string{"-rules", rules}, 2},
		{"both-inputs", []string{"-rules", rules, "-timeline", tl, "-scenario", "single"}, 2},
		{"bad-format", []string{"-rules", rules, "-timeline", tl, "-format", "xml"}, 2},
		{"bad-fail-on", []string{"-rules", rules, "-timeline", tl, "-fail-on", "sometimes"}, 2},
		{"bad-rules", []string{"-rules", bad, "-timeline", tl}, 1},
		{"missing-rules", []string{"-rules", "/nonexistent/rules.yaml", "-timeline", tl}, 1},
		{"missing-timeline", []string{"-rules", rules, "-timeline", "/nonexistent/tl.json"}, 1},
		{"bad-scenario", []string{"-rules", rules, "-scenario", "warpdrive"}, 1},
		{"bad-interval", []string{"-rules", rules, "-scenario", "single", "-interval", "0"}, 1},
	}
	for _, tc := range cases {
		code, _, errOut := runTool(t, tc.args...)
		if code != tc.want {
			t.Errorf("%s: exit = %d, want %d; stderr:\n%s", tc.name, code, tc.want, errOut)
		}
	}
}
