// Command obsdiff explains where the time went between two runs: it loads
// two observability artifacts — perfreg snapshots, metrics JSON exports,
// critpath reports, single timelines, or netload timeline grids — aligns
// their series, and prints an exactly-reconciled delta attribution
// (waterfalls, distribution shifts, digest changes, and a ranked blame
// list). A run diffed against itself is exactly zero.
//
// Usage:
//
//	obsdiff A.json B.json              # text waterfall
//	obsdiff -format json A.json B.json # machine-readable report
//	obsdiff -format csv A.json B.json  # flat rows for spreadsheets
//	obsdiff -o out.txt A.json B.json   # write to a file ("-" = stdout)
//	obsdiff -require-zero A.json B.json  # exit 1 unless the diff is zero
//	obsdiff -label-a base -label-b cand A.json B.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"msglayer/internal/obs/diff"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; factored out of main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("obsdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "text", "output format: text, json, or csv")
	out := fs.String("o", "-", "output destination (\"-\" = stdout)")
	labelA := fs.String("label-a", "", "label for the first artifact (default: its path)")
	labelB := fs.String("label-b", "", "label for the second artifact (default: its path)")
	requireZero := fs.Bool("require-zero", false, "exit 1 unless the diff is exactly zero (determinism gates)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "obsdiff: want exactly two artifact paths, e.g. obsdiff A.json B.json")
		return 2
	}

	load := func(path, label string) (*diff.Artifact, error) {
		a, err := diff.LoadArtifact(path)
		if err != nil {
			return nil, err
		}
		if label != "" {
			a.Path = label
			if a.Perfreg != nil {
				a.Perfreg.Label = label
			}
		}
		return a, nil
	}
	a, err := load(fs.Arg(0), *labelA)
	if err != nil {
		fmt.Fprintln(stderr, "obsdiff:", err)
		return 1
	}
	b, err := load(fs.Arg(1), *labelB)
	if err != nil {
		fmt.Fprintln(stderr, "obsdiff:", err)
		return 1
	}

	report, err := diff.CompareArtifacts(a, b)
	if err != nil {
		fmt.Fprintln(stderr, "obsdiff:", err)
		return 1
	}
	// Reconcile is the engine's own completeness proof; a failure here is a
	// bug or a corrupt artifact, never a legitimate diff.
	if err := report.Reconcile(); err != nil {
		fmt.Fprintln(stderr, "obsdiff:", err)
		return 1
	}

	var render func(io.Writer, *diff.Report) error
	switch *format {
	case "text":
		render = diff.WriteText
	case "json":
		render = diff.WriteJSON
	case "csv":
		render = diff.WriteCSV
	default:
		fmt.Fprintf(stderr, "obsdiff: unknown format %q (want text, json, or csv)\n", *format)
		return 2
	}
	if err := writeTo(*out, stdout, func(w io.Writer) error { return render(w, report) }); err != nil {
		fmt.Fprintln(stderr, "obsdiff:", err)
		return 1
	}
	if *requireZero && !report.Zero() {
		fmt.Fprintf(stderr, "obsdiff: %s and %s differ (%d series compared)\n", report.ALabel, report.BLabel, report.Terms())
		return 1
	}
	return 0
}

// writeTo renders into a file, or stdout for "-". A failed render or close
// removes the file rather than leaving a truncated dump behind.
func writeTo(dest string, stdout io.Writer, render func(io.Writer) error) error {
	if dest == "-" {
		return render(stdout)
	}
	f, err := os.Create(dest)
	if err != nil {
		return fmt.Errorf("writing %s: %w", dest, err)
	}
	err = render(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(dest)
		return fmt.Errorf("writing %s: %w", dest, err)
	}
	return nil
}
