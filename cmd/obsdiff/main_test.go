package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"msglayer/internal/experiments"
	"msglayer/internal/obs"
	"msglayer/internal/obs/diff"
)

// metricsFile runs one canonical scenario and writes its metrics export.
func metricsFile(t *testing.T, dir, name, scenario string, words int) string {
	t.Helper()
	hub := obs.NewHub()
	experiments.SetObserver(hub)
	defer experiments.SetObserver(nil)
	if _, err := experiments.RunCanonical(scenario, words); err != nil {
		t.Fatal(err)
	}
	doc, err := hub.Metrics.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestObsdiffSelfDiffIsZero(t *testing.T) {
	dir := t.TempDir()
	a := metricsFile(t, dir, "a.json", "cm5-finite", 64)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-require-zero", a, a}, &stdout, &stderr); code != 0 {
		t.Fatalf("self-diff exit = %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "identical: all") {
		t.Fatalf("self-diff output missing zero statement:\n%s", stdout.String())
	}
}

func TestObsdiffAttributesAndGates(t *testing.T) {
	dir := t.TempDir()
	a := metricsFile(t, dir, "a.json", "cm5-finite", 64)
	b := metricsFile(t, dir, "b.json", "cr-finite", 64)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-label-a", "cm5", "-label-b", "cr", a, b}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr.String())
	}
	text := stdout.String()
	for _, want := range []string{"A=cm5 B=cr", "== counters (events) ==", "top movers"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text output missing %q:\n%s", want, text)
		}
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-require-zero", a, b}, &stdout, &stderr); code != 1 {
		t.Fatalf("-require-zero on differing artifacts exit = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "differ") {
		t.Fatalf("gate failure not explained:\n%s", stderr.String())
	}
}

func TestObsdiffFormatsAndDeterminism(t *testing.T) {
	dir := t.TempDir()
	a := metricsFile(t, dir, "a.json", "cm5-stream", 64)
	b := metricsFile(t, dir, "b.json", "cr-stream", 64)

	render := func(format string) string {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-format", format, a, b}, &stdout, &stderr); code != 0 {
			t.Fatalf("-format %s exit = %d, stderr:\n%s", format, code, stderr.String())
		}
		return stdout.String()
	}
	for _, format := range []string{"text", "json", "csv"} {
		if render(format) != render(format) {
			t.Fatalf("-format %s output is not byte-identical across invocations", format)
		}
	}

	var report diff.Report
	if err := json.Unmarshal([]byte(render("json")), &report); err != nil {
		t.Fatalf("json output does not parse: %v", err)
	}
	if report.Kind != "metrics" || len(report.Sections) == 0 {
		t.Fatalf("json report = kind %q with %d sections", report.Kind, len(report.Sections))
	}
	if !strings.HasPrefix(render("csv"), "kind,section,unit,key,a,b,delta,permille,only_in\n") {
		t.Fatal("csv output missing header row")
	}

	out := filepath.Join(dir, "report.txt")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-o", out, a, b}, &stdout, &stderr); code != 0 {
		t.Fatalf("-o exit = %d, stderr:\n%s", code, stderr.String())
	}
	if data, err := os.ReadFile(out); err != nil || !strings.Contains(string(data), "obsdiff metrics:") {
		t.Fatalf("file output: err=%v", err)
	}
}

func TestObsdiffUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"one.json"}, &stdout, &stderr); code != 2 {
		t.Fatalf("single path exit = %d, want 2", code)
	}
	stderr.Reset()
	dir := t.TempDir()
	a := metricsFile(t, dir, "a.json", "single", 64)
	if code := run([]string{"-format", "xml", a, a}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad format exit = %d, want 2", code)
	}
	if code := run([]string{filepath.Join(dir, "missing.json"), a}, &stdout, &stderr); code != 1 {
		t.Fatal("missing file did not fail")
	}
}
