package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func runTwin(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestPredictNetText(t *testing.T) {
	code, out, errb := runTwin(t)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	for _, want := range []string{"fattree(4,2)/deterministic/vc1", "mean latency:", "calibrated:     true"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPredictNetJSON(t *testing.T) {
	code, out, errb := runTwin(t, "-json", "-topology", "mesh", "-mode", "cr", "-load", "0.15")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	for _, want := range []string{`"point": "mesh(4,4)/cr/vc1"`, `"mean_latency_cycles"`, `"calibrated": true`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q:\n%s", want, out)
		}
	}
}

func TestPredictProto(t *testing.T) {
	code, out, errb := runTwin(t, "-proto", "cm5-stream", "-words", "256")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	if !strings.Contains(out, "total instructions: 7501") {
		t.Errorf("unexpected proto prediction:\n%s", out)
	}
}

func TestPredictErrors(t *testing.T) {
	cases := [][]string{
		{"-topology", "torus"},
		{"-mode", "warp"},
		{"-load", "0"},
		{"-load", "1.5"},
		{"-cycles", "0"},
		{"-proto", "warp"},
	}
	for _, args := range cases {
		if code, _, errb := runTwin(t, args...); code == 0 || errb == "" {
			t.Errorf("args %v: exit %d, stderr %q — want failure with message", args, code, errb)
		}
	}
}

// TestFlagValidation: explicitly-set non-positive pool sizes error out
// instead of silently falling back to auto-sizing.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		ok   bool
	}{
		{"default auto", nil, true},
		{"explicit workers", []string{"-parallel", "2"}, true},
		{"zero parallel", []string{"-parallel", "0"}, false},
		{"negative parallel", []string{"-parallel", "-1"}, false},
		{"zero shards", []string{"-shards", "0"}, false},
		{"negative shards", []string{"-shards", "-2"}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, _, errb := runTwin(t, c.args...)
			if c.ok && code != 0 {
				t.Fatalf("exit %d: %s", code, errb)
			}
			if !c.ok {
				if code == 0 {
					t.Fatal("accepted non-positive pool size")
				}
				if !strings.Contains(errb, "must be a positive count") {
					t.Fatalf("unclear message: %q", errb)
				}
			}
		})
	}
}

func TestModesExclusive(t *testing.T) {
	code, _, errb := runTwin(t, "-calibrate", "-fit")
	if code == 0 || !strings.Contains(errb, "mutually exclusive") {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
}

func TestCalibrateRecordCompare(t *testing.T) {
	if testing.Short() {
		t.Skip("two full calibration sweeps")
	}
	baseline := filepath.Join(t.TempDir(), "twin.json")
	code, out, errb := runTwin(t, "-record", baseline)
	if code != 0 {
		t.Fatalf("record: exit %d: %s", code, errb)
	}
	if !strings.Contains(out, "recorded calibration baseline") {
		t.Errorf("record output: %s", out)
	}
	code, out, errb = runTwin(t, "-compare", baseline)
	if code != 0 {
		t.Fatalf("compare: exit %d: %s", code, errb)
	}
	if !strings.Contains(out, "PASS") {
		t.Errorf("compare output: %s", out)
	}
	// The worker accounting lives on stderr so that stdout stays
	// byte-identical across -parallel counts.
	if !strings.Contains(errb, "# workers:") || !strings.Contains(errb, "# shards:") {
		t.Errorf("stderr missing worker accounting: %q", errb)
	}
}

func TestCompareMissingBaseline(t *testing.T) {
	code, _, errb := runTwin(t, "-compare", filepath.Join(t.TempDir(), "absent.json"))
	if code == 0 || errb == "" {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
}

func TestFit(t *testing.T) {
	if testing.Short() {
		t.Skip("re-simulates the knot grid")
	}
	code, out, errb := runTwin(t, "-fit")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	if !strings.HasPrefix(out, "var calibratedRegimes = []calibratedRegime{") {
		t.Errorf("fit output header wrong:\n%.200s", out)
	}
}
