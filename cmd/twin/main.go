// Command twin evaluates the closed-form analytic twin of the simulator:
// O(1) predictions of flit-network behaviour and protocol instruction
// counts, and the calibration harness that keeps those predictions honest
// by sweeping them against real simulation runs.
//
// Usage:
//
//	twin                                   # predict the default net point
//	twin -topology mesh -w 4 -h 4 -mode cr -load 0.15
//	twin -proto cm5-stream -words 256      # protocol instruction prediction
//	twin -json                             # prediction as JSON
//	twin -calibrate                        # full twin-vs-simulator grid report
//	twin -calibrate -csv                   # ... as CSV (or -json)
//	twin -record twin.json                 # calibrate and write the JSON baseline
//	twin -compare twin.json                # calibrate and gate against the baseline
//	twin -fit                              # regenerate the tables.go knot tables
//	twin -speedup -speedup-floor 10000     # measure and gate the twin's speedup
//	twin -calibrate -parallel 8 -shards 2  # sweep options (report is byte-identical)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"msglayer/internal/parsweep"
	"msglayer/internal/twin"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; factored out of main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("twin", flag.ContinueOnError)
	fs.SetOutput(stderr)
	topoArg := fs.String("topology", "fattree", "fattree or mesh")
	k := fs.Int("k", 4, "fat tree arity")
	levels := fs.Int("levels", 2, "fat tree levels")
	w := fs.Int("w", 4, "mesh width")
	h := fs.Int("h", 4, "mesh height")
	modeArg := fs.String("mode", "deterministic", "routing mode: deterministic, adaptive, or cr")
	vcs := fs.Int("vc", 1, "virtual channels")
	load := fs.Float64("load", 0.1, "offered load, packets/node/cycle")
	cycles := fs.Int("cycles", twin.CalCycles, "measurement cycles the count predictions scale to")
	proto := fs.String("proto", "",
		"predict a protocol scenario instead of a network point: single, cm5-finite, cm5-stream, cr-finite, or cr-stream")
	words := fs.Int("words", 64, "transfer size for -proto, words")
	jsonOut := fs.Bool("json", false, "emit JSON")
	csvOut := fs.Bool("csv", false, "emit CSV (calibration report only)")
	calibrate := fs.Bool("calibrate", false,
		"sweep twin-vs-simulator across the committed grid and print the calibration report (byte-identical at any -parallel/-shards value and engine)")
	record := fs.String("record", "", "calibrate and write the JSON accuracy baseline to this file")
	compare := fs.String("compare", "", "calibrate and gate against the committed baseline in this file (exit 1 on any drift)")
	fit := fs.Bool("fit", false, "re-simulate the knot loads and print the regenerated tables.go knot tables")
	speedup := fs.Bool("speedup", false, "measure twin evaluation time against simulating the same point")
	speedupFloor := fs.Float64("speedup-floor", 0, "with -speedup, fail unless the measured factor reaches this floor")
	parallel := fs.Int("parallel", 0, "worker goroutines for the simulation sweep (0 = GOMAXPROCS, 1 = serial)")
	shardsFlag := fs.Int("shards", 0,
		"engine shards per simulation point (0 = auto; results are byte-identical at any value)")
	dense := fs.Bool("dense", false,
		"simulate with the dense reference engine instead of the event-driven scheduler; results are byte-identical, only speed differs")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "twin: O(1) analytic predictions of the simulator, with calibration gating")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := parsweep.ValidatePositiveFlags(fs, "parallel", "shards"); err != nil {
		fmt.Fprintln(stderr, "twin:", err)
		return 1
	}
	modes := 0
	for _, on := range []bool{*calibrate, *record != "", *compare != "", *fit, *speedup} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(stderr, "twin: -calibrate, -record, -compare, -fit, and -speedup are mutually exclusive")
		return 1
	}

	opt := twin.Options{Parallel: *parallel, Shards: *shardsFlag, Dense: *dense}
	// Worker accounting goes to stderr: calibration stdout must stay
	// byte-identical across -parallel/-shards values, since CI diffs it.
	if modes > 0 {
		workers := parsweep.Workers(*parallel)
		fmt.Fprintf(stderr, "# workers: %d\n# shards: %d (per simulation point)\n",
			workers, parsweep.Shards(*shardsFlag, workers))
	}

	switch {
	case *fit:
		src, err := twin.Fit(opt)
		if err != nil {
			fmt.Fprintln(stderr, "twin:", err)
			return 1
		}
		fmt.Fprint(stdout, src)
		return 0
	case *speedup:
		return runSpeedup(opt, *speedupFloor, stdout, stderr)
	case *calibrate, *record != "", *compare != "":
		return runCalibration(opt, *record, *compare, *jsonOut, *csvOut, stdout, stderr)
	}
	if *proto != "" {
		return predictProto(*proto, *words, *jsonOut, stdout, stderr)
	}
	return predictNet(*topoArg, *k, *levels, *w, *h, *modeArg, *vcs, *load, *cycles, *jsonOut, stdout, stderr)
}

// predictNet evaluates one flit-network operating point.
func predictNet(topo string, k, levels, w, h int, modeArg string, vcs int, load float64, cycles int, jsonOut bool, stdout, stderr io.Writer) int {
	mode, err := twin.ParseMode(modeArg)
	if err != nil {
		fmt.Fprintln(stderr, "twin:", err)
		return 1
	}
	r := twin.Regime{Topology: topo, Mode: mode, VCs: vcs}
	switch topo {
	case "fattree":
		r.A, r.B = k, levels
	case "mesh":
		r.A, r.B = w, h
	default:
		fmt.Fprintf(stderr, "twin: unknown topology %q\n", topo)
		return 1
	}
	pt := twin.NetPoint{Regime: r, Load: load, Cycles: cycles}
	p, err := pt.PredictNet()
	if err != nil {
		fmt.Fprintln(stderr, "twin:", err)
		return 1
	}
	if jsonOut {
		return emitJSON(stdout, stderr, struct {
			Point  string  `json:"point"`
			Load   float64 `json:"load"`
			Cycles int     `json:"cycles"`
			twin.NetPrediction
		}{r.String(), load, cycles, p})
	}
	fmt.Fprintln(stdout, "analytic twin prediction — closed form, no simulation")
	fmt.Fprintf(stdout, "point:          %s load %g cycles %d\n", r, load, cycles)
	fmt.Fprintf(stdout, "calibrated:     %v\n", p.Calibrated)
	fmt.Fprintf(stdout, "mean latency:   %.4f cycles\n", p.MeanLatency)
	fmt.Fprintf(stdout, "base latency:   %.4f cycles\n", p.BaseLatency)
	fmt.Fprintf(stdout, "contention:     %.3fx\n", p.Contention)
	fmt.Fprintf(stdout, "throughput:     %.4f pkts/node/kcycle\n", p.Throughput)
	fmt.Fprintf(stdout, "delivered:      %d packets\n", p.Delivered)
	fmt.Fprintf(stdout, "flit moves:     %d\n", p.FlitMoves)
	fmt.Fprintf(stdout, "total cycles:   %d (incl. drain)\n", p.Cycles)
	fmt.Fprintf(stdout, "mean links:     %.4f\n", p.MeanLinks)
	fmt.Fprintf(stdout, "worm flits:     %d\n", p.WormFlits)
	if !p.Calibrated {
		fmt.Fprintln(stdout, "note: uncalibrated shape — structural transfer from a same-mode calibrated regime")
	}
	return 0
}

// predictProto evaluates one protocol scenario.
func predictProto(scenario string, words int, jsonOut bool, stdout, stderr io.Writer) int {
	pt := twin.ProtoPoint{Scenario: scenario, Words: words}
	p, err := pt.PredictProto()
	if err != nil {
		fmt.Fprintln(stderr, "twin:", err)
		return 1
	}
	if jsonOut {
		return emitJSON(stdout, stderr, struct {
			Scenario string `json:"scenario"`
			Words    int    `json:"words"`
			twin.ProtoPrediction
		}{scenario, words, p})
	}
	fmt.Fprintln(stdout, "analytic twin prediction — closed form, no simulation")
	fmt.Fprintf(stdout, "point:              %s words %d\n", scenario, words)
	fmt.Fprintf(stdout, "total instructions: %d\n", p.Total)
	fmt.Fprintf(stdout, "overhead fraction:  %.4f\n", p.Overhead)
	fmt.Fprintf(stdout, "hardware packets:   %d\n", p.Packets)
	fmt.Fprintln(stdout, "note: exact — reproduces the simulator's canonical-scenario totals bit for bit")
	return 0
}

// runCalibration handles -calibrate, -record, and -compare.
func runCalibration(opt twin.Options, record, compare string, jsonOut, csvOut bool, stdout, stderr io.Writer) int {
	rep, err := twin.Calibrate(opt)
	if err != nil {
		fmt.Fprintln(stderr, "twin:", err)
		return 1
	}
	if err := rep.Check(twin.DefaultThresholds()); err != nil {
		fmt.Fprintln(stderr, "twin:", err)
		return 1
	}
	switch {
	case record != "":
		if err := writeTo(record, stdout, func(w io.Writer) error { return twin.WriteJSON(w, rep) }); err != nil {
			fmt.Fprintln(stderr, "twin:", err)
			return 1
		}
		fmt.Fprintf(stdout, "twin: recorded calibration baseline to %s (%d net points, %d proto points)\n",
			record, len(rep.Net), len(rep.Proto))
		return 0
	case compare != "":
		data, err := os.ReadFile(compare)
		if err != nil {
			fmt.Fprintln(stderr, "twin:", err)
			return 1
		}
		baseline, err := twin.ParseReport(data)
		if err != nil {
			fmt.Fprintln(stderr, "twin:", err)
			return 1
		}
		if bad := twin.Compare(baseline, rep); len(bad) != 0 {
			fmt.Fprintf(stderr, "twin: calibration drifted from %s:\n", compare)
			for _, b := range bad {
				fmt.Fprintln(stderr, " ", b)
			}
			return 1
		}
		fmt.Fprintf(stdout, "twin: calibration matches %s (%d net points, %d proto points) — PASS\n",
			compare, len(rep.Net), len(rep.Proto))
		return 0
	case jsonOut:
		if err := twin.WriteJSON(stdout, rep); err != nil {
			fmt.Fprintln(stderr, "twin:", err)
			return 1
		}
	case csvOut:
		if err := twin.WriteCSV(stdout, rep); err != nil {
			fmt.Fprintln(stderr, "twin:", err)
			return 1
		}
	default:
		if err := twin.WriteText(stdout, rep); err != nil {
			fmt.Fprintln(stderr, "twin:", err)
			return 1
		}
	}
	return 0
}

// runSpeedup handles -speedup.
func runSpeedup(opt twin.Options, floor float64, stdout, stderr io.Writer) int {
	s, err := twin.MeasureSpeedup(opt)
	if err != nil {
		fmt.Fprintln(stderr, "twin:", err)
		return 1
	}
	fmt.Fprintf(stdout, "twin speedup at %s:\n", s.Point)
	fmt.Fprintf(stdout, "  simulate: %.0f ns/op\n", s.SimNsPerOp)
	fmt.Fprintf(stdout, "  twin:     %.1f ns/op\n", s.TwinNsPerOp)
	fmt.Fprintf(stdout, "  factor:   %.0fx\n", s.Factor)
	if floor > 0 && s.Factor < floor {
		fmt.Fprintf(stderr, "twin: speedup %.0fx below the %.0fx floor\n", s.Factor, floor)
		return 1
	}
	return 0
}

// emitJSON marshals v to stdout as indented JSON.
func emitJSON(stdout, stderr io.Writer, v any) int {
	if err := writeJSONValue(stdout, v); err != nil {
		fmt.Fprintln(stderr, "twin:", err)
		return 1
	}
	return 0
}

// writeJSONValue emits v as indented JSON.
func writeJSONValue(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// writeTo renders into dest, treating "-" as stdout; a failed render never
// leaves a truncated file behind.
func writeTo(dest string, stdout io.Writer, render func(io.Writer) error) error {
	if dest == "-" {
		return render(stdout)
	}
	f, err := os.Create(dest)
	if err != nil {
		return fmt.Errorf("writing %s: %w", dest, err)
	}
	err = render(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(dest)
		return fmt.Errorf("writing %s: %w", dest, err)
	}
	return nil
}
