package main

import (
	"strings"
	"testing"
)

func TestRunSingleTable(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-table", "1", "-quiet"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"Table 1", "paper       20", "paper       27", "ok"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "MISMATCH") {
		t.Error("unexpected mismatch")
	}
}

func TestRunFigure6Verbose(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-figure", "6"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"CMAM", "CR", "-70%"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunBadSelection(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-table", "9"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d for bad table", code)
	}
	if !strings.Contains(errOut.String(), "no such table") {
		t.Errorf("stderr: %s", errOut.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-nonsense"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d for bad flag", code)
	}
}
