package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleTable(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-table", "1", "-quiet"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"Table 1", "paper       20", "paper       27", "ok"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "MISMATCH") {
		t.Error("unexpected mismatch")
	}
}

func TestRunFigure6Verbose(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-figure", "6"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"CMAM", "CR", "-70%"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunBadSelection(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-table", "9"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d for bad table", code)
	}
	if !strings.Contains(errOut.String(), "no such table") {
		t.Errorf("stderr: %s", errOut.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-nonsense"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d for bad flag", code)
	}
}

func TestObsMsgbenchJSONSummary(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-table", "1", "-json"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var doc struct {
		Results []struct {
			ID          string `json:"id"`
			Comparisons []struct {
				Name  string `json:"name"`
				Match bool   `json:"match"`
			} `json:"comparisons"`
		} `json:"results"`
		Mismatches int `json:"mismatches"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if len(doc.Results) != 1 || doc.Results[0].ID != "table1" {
		t.Fatalf("unexpected results: %+v", doc.Results)
	}
	if doc.Mismatches != 0 {
		t.Fatalf("mismatches = %d, want 0", doc.Mismatches)
	}
	for _, c := range doc.Results[0].Comparisons {
		if !c.Match {
			t.Errorf("comparison %q does not match", c.Name)
		}
	}
}

func TestObsMsgbenchMetricsAndTrace(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.txt")
	trace := filepath.Join(dir, "trace.json")
	var out, errOut strings.Builder
	if code := run([]string{"-table", "2", "-quiet", "-metrics", metrics, "-trace-out", trace}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	md, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "msglayer_packets_sent_total") {
		t.Error("metrics dump has no packet counters")
	}
	td, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(td, &doc); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace is empty")
	}
}

// TestObsMsgbenchTimeline exercises -timeline-out: the runs sample into
// round-clock windows, reconcile, and render identically across runs.
func TestObsMsgbenchTimeline(t *testing.T) {
	render := func(name string) string {
		dir := t.TempDir()
		tl := filepath.Join(dir, name)
		var out, errOut strings.Builder
		if code := run([]string{"-table", "2", "-quiet", "-timeline-out", tl, "-timeline-interval", "16"}, &out, &errOut); code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errOut.String())
		}
		body, err := os.ReadFile(tl)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	body := render("tl.json")
	var doc struct {
		Schema   int    `json:"schema"`
		Interval uint64 `json:"interval"`
		Digest   string `json:"digest"`
		Windows  []struct {
			Counters []struct {
				Key string `json:"key"`
			} `json:"counters"`
		} `json:"windows"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("timeline does not parse: %v", err)
	}
	if doc.Interval != 16 || doc.Digest == "" || len(doc.Windows) == 0 {
		t.Fatalf("timeline incomplete: interval=%d digest=%q windows=%d", doc.Interval, doc.Digest, len(doc.Windows))
	}
	sawPackets := false
	for _, w := range doc.Windows {
		for _, c := range w.Counters {
			if strings.HasPrefix(c.Key, "packets_sent_total") {
				sawPackets = true
			}
		}
	}
	if !sawPackets {
		t.Error("no packets_sent_total deltas in any window")
	}
	if again := render("tl.json"); again != body {
		t.Error("timeline differs between identical runs")
	}

	csvBody := render("tl.csv")
	if !strings.HasPrefix(csvBody, "window,start,end,kind,key,value") {
		t.Errorf("CSV header wrong:\n%.200s", csvBody)
	}
}

// TestObsMsgbenchCritpath exercises -critpath: the run's trace must
// reconstruct into a per-message attribution report.
func TestObsMsgbenchCritpath(t *testing.T) {
	dir := t.TempDir()
	cp := filepath.Join(dir, "cp.txt")
	var out, errOut strings.Builder
	if code := run([]string{"-table", "2", "-quiet", "-critpath", cp}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	body, err := os.ReadFile(cp)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"critical-path report:", "where the time goes", "critical path"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("critpath report missing %q:\n%.2000s", want, body)
		}
	}
}
