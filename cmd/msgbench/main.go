// Command msgbench regenerates the paper's tables and figures from the
// simulation, printing each result alongside the paper's published value.
//
// Usage:
//
//	msgbench                  # all paper experiments
//	msgbench -table 2         # one table (1, 2, or 3)
//	msgbench -figure 6        # one figure (6 or 8)
//	msgbench -ablations       # the prose-claim ablations and the flit demo
//	msgbench -parallel 4      # fan the experiments over 4 workers
//	msgbench -quiet           # only the paper-vs-measured summary
//	msgbench -json            # machine-readable result summary on stdout
//	msgbench -metrics m.txt   # dump runtime metrics ("-" = stdout)
//	msgbench -trace-out t.json  # dump a Chrome trace of the runs
//	msgbench -critpath cp.txt # per-message critical-path attribution ("-" = stdout)
//	msgbench -timeline-out tl.json  # windowed metrics timeline (.csv for CSV)
//	msgbench -slo rules.yaml  # evaluate SLO rules live; exit 3 on violation
//	msgbench -serve :8080     # live /metrics, /snapshot, /trace, /debug/pprof/
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"msglayer/internal/critpath"
	"msglayer/internal/experiments"
	"msglayer/internal/obs"
	"msglayer/internal/obs/monitor"
	"msglayer/internal/obs/monitor/blame"
	"msglayer/internal/obs/serve"
	"msglayer/internal/obs/timeline"
	"msglayer/internal/parsweep"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonComparison is one paper-vs-measured row of the -json summary.
type jsonComparison struct {
	Name     string `json:"name"`
	Paper    uint64 `json:"paper"`
	Measured uint64 `json:"measured"`
	Match    bool   `json:"match"`
	Note     string `json:"note,omitempty"`
}

// jsonResult is one experiment of the -json summary.
type jsonResult struct {
	ID          string           `json:"id"`
	Title       string           `json:"title"`
	Comparisons []jsonComparison `json:"comparisons"`
}

// jsonSummary is the toplevel -json document.
type jsonSummary struct {
	Results    []jsonResult `json:"results"`
	Mismatches int          `json:"mismatches"`
}

// run executes the tool; factored out of main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("msgbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table := fs.Int("table", 0, "run a single table (1, 2, or 3)")
	figure := fs.Int("figure", 0, "run a single figure (6 or 8)")
	ablations := fs.Bool("ablations", false, "run the ablation experiments")
	parallel := fs.Int("parallel", 0,
		"worker goroutines for the full experiment run (0 = GOMAXPROCS, 1 = serial; forced serial when an observer is attached)")
	shardsFlag := fs.Int("shards", 0,
		"engine shards for the flit-level experiments (0 = auto: GOMAXPROCS split across the -parallel workers, which take precedence; 1 = serial engine; results are byte-identical at any value)")
	quiet := fs.Bool("quiet", false, "print only the comparison summary")
	asJSON := fs.Bool("json", false, "print a machine-readable JSON summary instead of text")
	metrics := fs.String("metrics", "", "dump runtime metrics to a file after the runs (\"-\" = stdout)")
	traceOut := fs.String("trace-out", "", "dump a Chrome trace-event JSON of the runs (\"-\" = stdout)")
	critpathOut := fs.String("critpath", "",
		"write a per-message critical-path attribution report of the runs (\"-\" = stdout)")
	serveAddr := fs.String("serve", "",
		"serve live observability on this address (/metrics, /snapshot, /trace, /debug/pprof/) and keep serving after the runs until interrupted")
	timelineOut := fs.String("timeline-out", "",
		"sample the runs' metrics into windowed deltas on the machine-round clock and write the timeline (\"-\" = stdout; a .csv suffix selects CSV, otherwise JSON)")
	timelineInterval := fs.Int("timeline-interval", 100, "timeline window width in machine rounds")
	sloRulesPath := fs.String("slo", "",
		"evaluate SLO rules (JSON/YAML file, or \"canonical\") live against the runs' windowed metrics and exit 3 if any alert fired")
	sloOut := fs.String("slo-out", "-",
		"SLO alert report destination (\"-\" = stdout; .json/.csv suffixes select the format, otherwise text)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := parsweep.ValidatePositiveFlags(fs, "parallel", "shards"); err != nil {
		fmt.Fprintln(stderr, "msgbench:", err)
		return 1
	}
	if *timelineInterval < 1 {
		fmt.Fprintln(stderr, "msgbench: -timeline-interval must be >= 1")
		return 1
	}
	// Engine shards for the flit-level experiments: the worker fan-out
	// (barrier-free, whole experiments at a time) takes precedence, and the
	// product of workers and shards stays within GOMAXPROCS. Results are
	// byte-identical at any shard count.
	experiments.SetFlitShards(parsweep.Shards(*shardsFlag, parsweep.Workers(*parallel)))
	defer experiments.SetFlitShards(0)

	var rules *monitor.RuleSet
	if *sloRulesPath != "" {
		var err error
		if rules, err = monitor.LoadRules(*sloRulesPath); err != nil {
			fmt.Fprintln(stderr, "msgbench:", err)
			return 1
		}
	}
	var hub *obs.Hub
	if *metrics != "" || *traceOut != "" || *critpathOut != "" || *serveAddr != "" || *timelineOut != "" || rules != nil {
		hub = obs.NewHub()
		experiments.SetObserver(hub)
		defer experiments.SetObserver(nil)
	}
	// The timeline sampler rides the hub's round clock: every machine.Run
	// round ticks the hub, and the sampler closes windows as the shared
	// round counter crosses interval boundaries across all experiments.
	var sampler *timeline.Sampler
	if *timelineOut != "" || rules != nil {
		sampler = timeline.New(hub.Metrics, timeline.Config{Interval: uint64(*timelineInterval)})
		hub.SetTickListener(sampler.Advance)
	}
	// The SLO monitor evaluates windows live as the sampler closes them —
	// the same code path the recorded-timeline replay takes, so reports are
	// byte-identical either way.
	var mon *monitor.Monitor
	if rules != nil {
		var err error
		if mon, err = monitor.New(rules); err != nil {
			fmt.Fprintln(stderr, "msgbench:", err)
			return 1
		}
		mon.SetBlamer(blame.Compute)
		mon.Attach(sampler)
	}
	ctx := context.Background()
	var srv *serve.Server
	if *serveAddr != "" {
		srv = serve.New(hub)
		srv.SetTimeline(sampler)
		srv.SetMonitor(mon)
		if err := srv.Start(*serveAddr); err != nil {
			fmt.Fprintln(stderr, "msgbench:", err)
			return 1
		}
		var cancel context.CancelFunc
		ctx, cancel = signal.NotifyContext(ctx, os.Interrupt)
		defer cancel()
		defer func() {
			sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer scancel()
			if err := srv.Shutdown(sctx); err != nil {
				fmt.Fprintln(stderr, "msgbench: shutdown:", err)
			}
		}()
		fmt.Fprintf(stderr, "msgbench: observability on http://%s (SIGINT to stop)\n", srv.Addr())
	}

	var results []experiments.Result
	var err error
	// The experiments mutate the hub through the global observer, so with
	// -serve they run under the server's lock, serialized vs the handlers.
	runAll := func() {
		switch {
		case *table == 1:
			results, err = one(experiments.Table1)
		case *table == 2:
			results, err = one(experiments.Table2)
		case *table == 3:
			results, err = one(experiments.Table3)
		case *figure == 6:
			results, err = one(experiments.Figure6)
		case *figure == 8:
			results, err = one(experiments.Figure8)
		case *table != 0 || *figure != 0:
			err = fmt.Errorf("no such table/figure (tables 1-3, figures 6 and 8)")
		case *ablations:
			results, err = experiments.Ablations()
		default:
			// AllWith falls back to serial on its own when an observer hub
			// is attached, so -metrics/-trace-out/-serve artifacts keep
			// their run-order layout.
			results, err = experiments.AllWith(*parallel)
		}
	}
	if srv != nil {
		srv.Sync(runAll)
	} else {
		runAll()
	}
	if err != nil {
		fmt.Fprintln(stderr, "msgbench:", err)
		return 1
	}
	if sampler != nil {
		var recErr error
		finish := func() {
			sampler.Flush(hub.Round())
			// Window deltas must sum exactly to the final registry totals.
			recErr = sampler.Reconcile()
		}
		if srv != nil {
			srv.Sync(finish)
		} else {
			finish()
		}
		if recErr != nil {
			fmt.Fprintln(stderr, "msgbench: timeline reconciliation:", recErr)
			return 1
		}
	}

	mismatches := 0
	summary := jsonSummary{Results: []jsonResult{}}
	for _, r := range results {
		jr := jsonResult{ID: r.ID, Title: r.Title, Comparisons: []jsonComparison{}}
		for _, c := range r.Comparisons {
			if !c.Match() {
				mismatches++
			}
			jr.Comparisons = append(jr.Comparisons, jsonComparison{
				Name: c.Name, Paper: c.Paper, Measured: c.Measured, Match: c.Match(), Note: c.Note,
			})
		}
		summary.Results = append(summary.Results, jr)
	}
	summary.Mismatches = mismatches

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(summary); err != nil {
			fmt.Fprintln(stderr, "msgbench:", err)
			return 1
		}
	} else {
		for _, r := range results {
			fmt.Fprintf(stdout, "==== %s ====\n", r.Title)
			if !*quiet {
				fmt.Fprintln(stdout, r.Text)
			}
			for _, c := range r.Comparisons {
				status := "ok"
				if !c.Match() {
					status = "MISMATCH"
				}
				note := ""
				if c.Note != "" {
					note = "  [" + c.Note + "]"
				}
				fmt.Fprintf(stdout, "  %-58s paper %8d  measured %8d  %s%s\n",
					c.Name, c.Paper, c.Measured, status, note)
			}
			fmt.Fprintln(stdout)
		}
	}

	if hub != nil {
		if *metrics != "" {
			if err := writeTo(*metrics, stdout, hub.Metrics.WritePrometheus); err != nil {
				fmt.Fprintln(stderr, "msgbench:", err)
				return 1
			}
		}
		if *traceOut != "" {
			if err := writeTo(*traceOut, stdout, hub.Trace.WriteChromeTrace); err != nil {
				fmt.Fprintln(stderr, "msgbench:", err)
				return 1
			}
		}
		if *critpathOut != "" {
			render := func(w io.Writer) error {
				return critpath.WriteText(w, critpath.Analyze(hub.Trace.Events()))
			}
			if err := writeTo(*critpathOut, stdout, render); err != nil {
				fmt.Fprintln(stderr, "msgbench:", err)
				return 1
			}
		}
		if sampler != nil && *timelineOut != "" {
			var tl *timeline.Timeline
			snap := func() { tl = sampler.Snapshot() }
			if srv != nil {
				srv.Sync(snap)
			} else {
				snap()
			}
			render := func(w io.Writer) error {
				if strings.HasSuffix(*timelineOut, ".csv") {
					return timeline.WriteCSV(w, tl)
				}
				return timeline.WriteJSON(w, tl)
			}
			if err := writeTo(*timelineOut, stdout, render); err != nil {
				fmt.Fprintln(stderr, "msgbench:", err)
				return 1
			}
		}
		if d := hub.Trace.Dropped(); d > 0 {
			fmt.Fprintf(stderr, "msgbench: warning: trace dropped %d events; exported traces are truncated\n", d)
		}
	}

	// The SLO report is written before any violation exit so the artifact
	// always exists; a paper mismatch still takes exit-code precedence.
	sloViolated := false
	if mon != nil {
		var rep *monitor.Report
		snap := func() { rep = mon.Snapshot("msgbench") }
		if srv != nil {
			srv.Sync(snap)
		} else {
			snap()
		}
		sloViolated = len(rep.Incidents) > 0
		render := func(w io.Writer) error {
			switch {
			case strings.HasSuffix(*sloOut, ".json"):
				return monitor.WriteJSON(w, rep)
			case strings.HasSuffix(*sloOut, ".csv"):
				return monitor.WriteCSV(w, rep)
			default:
				return monitor.WriteText(w, rep)
			}
		}
		if err := writeTo(*sloOut, stdout, render); err != nil {
			fmt.Fprintln(stderr, "msgbench:", err)
			return 1
		}
	}

	if srv != nil && ctx.Err() == nil {
		// Keep the recorded run inspectable until the user interrupts.
		fmt.Fprintln(stderr, "msgbench: runs done, still serving (SIGINT to stop)")
		<-ctx.Done()
	}
	if mismatches > 0 {
		fmt.Fprintf(stderr, "msgbench: %d comparisons diverged from the paper\n", mismatches)
		return 1
	}
	if sloViolated {
		fmt.Fprintln(stderr, "msgbench: SLO violated")
		return 3
	}
	return 0
}

// writeTo renders into a file, or stdout for "-". A failed render or close
// removes the file rather than leaving a truncated dump behind.
func writeTo(dest string, stdout io.Writer, render func(io.Writer) error) error {
	if dest == "-" {
		return render(stdout)
	}
	f, err := os.Create(dest)
	if err != nil {
		return fmt.Errorf("writing %s: %w", dest, err)
	}
	err = render(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(dest)
		return fmt.Errorf("writing %s: %w", dest, err)
	}
	return nil
}

func one(runOne func() (experiments.Result, error)) ([]experiments.Result, error) {
	r, err := runOne()
	if err != nil {
		return nil, err
	}
	return []experiments.Result{r}, nil
}
