// Command msgbench regenerates the paper's tables and figures from the
// simulation, printing each result alongside the paper's published value.
//
// Usage:
//
//	msgbench                  # all paper experiments
//	msgbench -table 2         # one table (1, 2, or 3)
//	msgbench -figure 6        # one figure (6 or 8)
//	msgbench -ablations       # the prose-claim ablations and the flit demo
//	msgbench -quiet           # only the paper-vs-measured summary
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"msglayer/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; factored out of main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("msgbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table := fs.Int("table", 0, "run a single table (1, 2, or 3)")
	figure := fs.Int("figure", 0, "run a single figure (6 or 8)")
	ablations := fs.Bool("ablations", false, "run the ablation experiments")
	quiet := fs.Bool("quiet", false, "print only the comparison summary")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var results []experiments.Result
	var err error
	switch {
	case *table == 1:
		results, err = one(experiments.Table1)
	case *table == 2:
		results, err = one(experiments.Table2)
	case *table == 3:
		results, err = one(experiments.Table3)
	case *figure == 6:
		results, err = one(experiments.Figure6)
	case *figure == 8:
		results, err = one(experiments.Figure8)
	case *table != 0 || *figure != 0:
		err = fmt.Errorf("no such table/figure (tables 1-3, figures 6 and 8)")
	case *ablations:
		results, err = experiments.Ablations()
	default:
		results, err = experiments.All()
	}
	if err != nil {
		fmt.Fprintln(stderr, "msgbench:", err)
		return 1
	}

	mismatches := 0
	for _, r := range results {
		fmt.Fprintf(stdout, "==== %s ====\n", r.Title)
		if !*quiet {
			fmt.Fprintln(stdout, r.Text)
		}
		for _, c := range r.Comparisons {
			status := "ok"
			if !c.Match() {
				status = "MISMATCH"
				mismatches++
			}
			note := ""
			if c.Note != "" {
				note = "  [" + c.Note + "]"
			}
			fmt.Fprintf(stdout, "  %-58s paper %8d  measured %8d  %s%s\n",
				c.Name, c.Paper, c.Measured, status, note)
		}
		fmt.Fprintln(stdout)
	}
	if mismatches > 0 {
		fmt.Fprintf(stderr, "msgbench: %d comparisons diverged from the paper\n", mismatches)
		return 1
	}
	return 0
}

func one(runOne func() (experiments.Result, error)) ([]experiments.Result, error) {
	r, err := runOne()
	if err != nil {
		return nil, err
	}
	return []experiments.Result{r}, nil
}
