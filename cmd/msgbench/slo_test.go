package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sloRules writes a rules file into a temp dir.
func sloRules(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestObsMsgbenchSLOCompliant: the canonical rules hold on Figure 6 and
// the run exits 0 with the report written.
func TestObsMsgbenchSLOCompliant(t *testing.T) {
	sloPath := filepath.Join(t.TempDir(), "slo.txt")
	var out, errOut strings.Builder
	code := run([]string{"-figure", "6", "-quiet", "-slo", "canonical", "-slo-out", sloPath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errOut.String())
	}
	rep, err := os.ReadFile(sloPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# slo report: msgbench", "delivery-floor", "0 incident(s), ok"} {
		if !strings.Contains(string(rep), want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

// TestObsMsgbenchSLOViolation: an impossible floor fires live and the run
// exits 3, after the report is written.
func TestObsMsgbenchSLOViolation(t *testing.T) {
	rules := sloRules(t, "tight.yaml", `rules:
  - name: impossible-floor
    kind: rate
    severity: page
    match:
      prefix: net_delivered_total
    min: 1000000
`)
	sloPath := filepath.Join(t.TempDir(), "slo.txt")
	var out, errOut strings.Builder
	code := run([]string{"-figure", "6", "-quiet", "-slo", rules, "-slo-out", sloPath}, &out, &errOut)
	if code != 3 {
		t.Fatalf("exit = %d, want 3; stderr:\n%s", code, errOut.String())
	}
	rep, err := os.ReadFile(sloPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rep), "impossible-floor") || !strings.Contains(string(rep), "incident 0:") {
		t.Fatalf("report missing the fired incident:\n%s", rep)
	}
	if !strings.Contains(errOut.String(), "SLO violated") {
		t.Fatalf("stderr missing violation notice:\n%s", errOut.String())
	}
}

// TestObsMsgbenchSLODeterminism: the live report is identical across
// repeated runs (the hub round clock and windows are deterministic).
func TestObsMsgbenchSLODeterminism(t *testing.T) {
	render := func() string {
		sloPath := filepath.Join(t.TempDir(), "slo.txt")
		var out, errOut strings.Builder
		if code := run([]string{"-figure", "6", "-quiet", "-slo", "canonical", "-slo-out", sloPath}, &out, &errOut); code != 0 {
			t.Fatalf("exit %d: %s", code, errOut.String())
		}
		b, err := os.ReadFile(sloPath)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("SLO report not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}
