// Package msglayer is a library-scale reproduction of Karamcheti & Chien,
// "Software Overhead in Messaging Layers: Where Does the Time Go?"
// (ASPLOS 1994).
//
// It provides:
//
//   - Simulated routing substrates with the paper's two contracts: a
//     CM-5-like network (arbitrary delivery order, finite buffering, fault
//     detection without correction) and a Compressionless-Routing-like
//     network (in-order, reliable, header rejection instead of buffer
//     preallocation), plus a flit-level wormhole simulator demonstrating
//     the mechanisms.
//   - A CMAM-style active messages layer and the paper's three protocols
//     (single-packet, finite-sequence, indefinite-sequence), instrumented
//     with the paper's instruction-count methodology: every protocol event
//     charges calibrated reg/mem/dev instruction bundles attributed to
//     base cost, buffer management, in-order delivery, or fault tolerance.
//   - The analytic cost model generalizing the measurements over packet
//     size and count (the paper's Figure 8), and experiment drivers that
//     regenerate every table and figure.
//   - A runtime observability layer: a metrics registry (counters, gauges,
//     fixed-bucket histograms keyed by node and protocol), a structured
//     event tracer with simulated-time timestamps, and exporters to
//     Prometheus text, JSON, and the Chrome trace-event format with every
//     event attributed to the paper's Feature axes. Attach it with
//     Machine.AttachObserver; it is nil-safe and costs nothing when
//     detached.
//
// Quick start:
//
//	m, err := msglayer.NewCM5Machine(msglayer.CM5Options{Nodes: 2})
//	ep0 := msglayer.NewEndpoint(m.Node(0))
//	ep1 := msglayer.NewEndpoint(m.Node(1))
//	ep1.Register(1, func(src int, args []msglayer.Word) { ... })
//	ep0.AM4(1, 1, 10, 20, 30, 40)
//	ep1.PollSingle()
//	fmt.Println(msglayer.RenderTable1(m.TotalGauge()))
//
// See examples/ for complete programs and internal/experiments for the
// paper reproduction harness.
package msglayer

import (
	"msglayer/internal/analytic"
	"msglayer/internal/cmam"
	"msglayer/internal/collectives"
	"msglayer/internal/cost"
	"msglayer/internal/crmsg"
	"msglayer/internal/ctrlnet"
	"msglayer/internal/flitnet"
	"msglayer/internal/machine"
	"msglayer/internal/network"
	"msglayer/internal/obs"
	"msglayer/internal/protocols"
	"msglayer/internal/report"
	"msglayer/internal/reqreply"
	"msglayer/internal/topology"
	"msglayer/internal/trace"
)

// Core data types.
type (
	// Word is a 32-bit network word.
	Word = network.Word
	// Packet is one hardware packet.
	Packet = network.Packet
	// Gauge accumulates dynamic instruction counts.
	Gauge = cost.Gauge
	// Vec is an instruction count split into reg/mem/dev.
	Vec = cost.Vec
	// Schedule is the per-event instruction-charge calibration table.
	Schedule = cost.Schedule
	// Model assigns per-category cycle weights.
	Model = cost.Model
	// Machine is a set of simulated nodes sharing a network.
	Machine = machine.Machine
	// Node is one simulated processing node.
	Node = machine.Node
	// Stepper is a unit of protocol work driven by Run.
	Stepper = machine.Stepper
	// StepFunc adapts a function to Stepper.
	StepFunc = machine.StepFunc
	// Endpoint is a node's active-messages (CMAM) layer.
	Endpoint = cmam.Endpoint
	// HandlerID names a registered active-message handler.
	HandlerID = cmam.HandlerID
	// Handler is an active-message handler.
	Handler = cmam.Handler
	// Finite is the finite-sequence protocol service (CMAM substrate).
	Finite = protocols.Finite
	// FiniteTransfer is one outgoing finite-sequence transfer.
	FiniteTransfer = protocols.FiniteTransfer
	// Stream is the indefinite-sequence protocol service (CMAM substrate).
	Stream = protocols.Stream
	// StreamConfig tunes the indefinite-sequence protocol.
	StreamConfig = protocols.StreamConfig
	// Conn is an ordered channel of a Stream.
	Conn = protocols.Conn
	// CRFinite is the finite-sequence service on the CR substrate.
	CRFinite = crmsg.Finite
	// CRFiniteConfig tunes a CRFinite service.
	CRFiniteConfig = crmsg.FiniteConfig
	// CRStream is the indefinite-sequence service on the CR substrate.
	CRStream = crmsg.Stream
	// CRStreamConfig tunes a CRStream service.
	CRStreamConfig = crmsg.StreamConfig
	// Cells is a role-by-feature cost breakdown.
	Cells = report.Cells
	// Breakdown is the analytic model's role-by-feature table.
	Breakdown = analytic.Breakdown
	// Trace is an ordered protocol event log (Figures 3/4/5/7).
	Trace = trace.Trace
)

// Accounting enums, re-exported.
const (
	Reg = cost.Reg
	Mem = cost.Mem
	Dev = cost.Dev

	Base       = cost.Base
	BufferMgmt = cost.BufferMgmt
	InOrder    = cost.InOrder
	FaultTol   = cost.FaultTol

	RoleSource      = cost.Source
	RoleDestination = cost.Destination
)

// Cycle-cost models from Appendix A.
var (
	UnitModel = cost.Unit
	CM5Model  = cost.CM5
)

// CM5Options configures a CM-5-substrate machine.
type CM5Options struct {
	// Nodes is the number of processing nodes (required).
	Nodes int
	// PacketWords is the hardware packet payload; defaults to 4, must be
	// even (Figure 8 sweeps 4-128).
	PacketWords int
	// HalfOutOfOrder applies the paper's Table 2 delivery-order
	// assumption: within each flow, every adjacent pair of packets is
	// delivered swapped.
	HalfOutOfOrder bool
	// Faults optionally injects packet corruption/loss; see
	// NewEveryNthDropPlan and friends.
	Faults FaultPlan
	// Capacity bounds per-destination buffering (0 = unbounded).
	Capacity int
}

// FaultPlan decides packet fates; see the fault constructors below.
type FaultPlan = network.FaultPlan

// NewEveryNthDropPlan drops every nth packet.
func NewEveryNthDropPlan(n int) FaultPlan {
	return &network.EveryNth{N: n, What: network.Drop}
}

// NewEveryNthCorruptPlan corrupts every nth packet (detected and discarded
// by the receiving NI).
func NewEveryNthCorruptPlan(n int) FaultPlan {
	return &network.EveryNth{N: n, What: network.Corrupt}
}

// NewSeededFaultPlan corrupts/drops packets at a probability, seeded for
// repeatability.
func NewSeededFaultPlan(rate float64, seed int64) FaultPlan {
	return network.NewSeededRate(rate, seed)
}

// NewCM5Machine builds a machine over the CM-5-like behavioral substrate
// with the paper's calibration schedule.
func NewCM5Machine(opts CM5Options) (*Machine, error) {
	if opts.PacketWords == 0 {
		opts.PacketWords = 4
	}
	var reorder network.ReorderPolicy
	if opts.HalfOutOfOrder {
		reorder = network.PairSwap()
	}
	net, err := network.NewCM5Net(network.CM5Config{
		Nodes:       opts.Nodes,
		PacketWords: opts.PacketWords,
		Reorder:     reorder,
		Faults:      opts.Faults,
		Capacity:    opts.Capacity,
	})
	if err != nil {
		return nil, err
	}
	sched, err := cost.NewPaperSchedule(opts.PacketWords)
	if err != nil {
		return nil, err
	}
	return machine.New(net, sched)
}

// CROptions configures a Compressionless-Routing-substrate machine.
type CROptions struct {
	// Nodes is the number of processing nodes (required).
	Nodes int
	// PacketWords is the hardware packet payload; defaults to 4.
	PacketWords int
	// Capacity bounds per-destination buffering (0 = unbounded).
	Capacity int
}

// CRMachine bundles a CR machine with its substrate (needed to build CR
// protocol services, which install acceptance checks on it).
type CRMachine struct {
	*Machine
	Substrate *network.CRNet
}

// NewCRMachine builds a machine over the CR-like behavioral substrate.
func NewCRMachine(opts CROptions) (*CRMachine, error) {
	net, err := network.NewCRNet(network.CRConfig{
		Nodes:       opts.Nodes,
		PacketWords: opts.PacketWords,
		Capacity:    opts.Capacity,
	})
	if err != nil {
		return nil, err
	}
	pw := opts.PacketWords
	if pw == 0 {
		pw = 4
	}
	sched, err := cost.NewPaperSchedule(pw)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(net, sched)
	if err != nil {
		return nil, err
	}
	return &CRMachine{Machine: m, Substrate: net}, nil
}

// NewEndpoint attaches an active-messages layer to a node.
func NewEndpoint(n *Node) *Endpoint { return cmam.NewEndpoint(n) }

// NewFinite installs the finite-sequence protocol (Figure 3) on an
// endpoint over the CM-5 substrate.
func NewFinite(ep *Endpoint) *Finite { return protocols.NewFinite(ep) }

// NewStream installs the indefinite-sequence protocol (Figure 4) on an
// endpoint over the CM-5 substrate.
func NewStream(ep *Endpoint, cfg StreamConfig) (*Stream, error) {
	return protocols.NewStream(ep, cfg)
}

// NewCRFinite installs the finite-sequence protocol (Figure 5) on an
// endpoint over a CR machine.
func NewCRFinite(ep *Endpoint, m *CRMachine, cfg CRFiniteConfig) (*CRFinite, error) {
	return crmsg.NewFinite(ep, m.Substrate, cfg)
}

// NewCRStream installs the indefinite-sequence protocol (Figure 7) on an
// endpoint over a CR machine.
func NewCRStream(ep *Endpoint, cfg CRStreamConfig) (*CRStream, error) {
	return crmsg.NewStream(ep, cfg)
}

// Run drives steppers round-robin until all are done; see machine.Run.
func Run(maxRounds int, steppers ...Stepper) error {
	return machine.Run(maxRounds, steppers...)
}

// NewPaperSchedule returns the paper-calibrated charge schedule for
// packets of n data words.
func NewPaperSchedule(n int) (*Schedule, error) { return cost.NewPaperSchedule(n) }

// Rendering helpers in the paper's table layouts.
func RenderTable1(g *Gauge) string                 { return report.Table1(g) }
func RenderFeatureTable(t string, c Cells) string  { return report.FeatureTable(t, c) }
func RenderCategoryTable(t string, c Cells) string { return report.CategoryTable(t, c) }

// BreakdownOf extracts a role-by-feature breakdown from a gauge.
func BreakdownOf(g *Gauge) Cells { return report.FromGauge(g) }

// MergeRoles combines a source node's gauge and a destination node's gauge
// into one two-column breakdown.
func MergeRoles(src, dst *Gauge) Cells { return report.MergeRoles(src, dst) }

// Protocol traces (Figures 3, 4, 5, 7).
func TraceFigure3(words int) (Trace, error)   { return trace.Figure3(words) }
func TraceFigure4(packets int) (Trace, error) { return trace.Figure4(packets) }
func TraceFigure5(words int) (Trace, error)   { return trace.Figure5(words) }
func TraceFigure7(packets int) (Trace, error) { return trace.Figure7(packets) }

// Flit-level network simulation (mechanism demonstrations).
type (
	// FlitNet is the flit-level wormhole network simulator.
	FlitNet = flitnet.Net
	// FlitConfig assembles a FlitNet.
	FlitConfig = flitnet.Config
	// Topology describes routers and routes for a FlitNet.
	Topology = topology.Topology
)

// Flit-network routing modes.
const (
	RouteDeterministic = flitnet.Deterministic
	RouteAdaptive      = flitnet.Adaptive
	RouteCR            = flitnet.CR
)

// NewFatTree builds a k-ary n-tree (CM-5-style fat tree).
func NewFatTree(k, n int) (Topology, error) { return topology.NewFatTree(k, n) }

// NewMesh builds a 2-D mesh (the canonical CR substrate).
func NewMesh(w, h int) (Topology, error) { return topology.NewMesh(w, h) }

// NewFlitNet builds a flit-level network.
func NewFlitNet(cfg FlitConfig) (*FlitNet, error) { return flitnet.New(cfg) }

// Control-network (hardware combining tree) types.
type (
	// ControlNet is a CM-5-style control network: a combining tree that
	// performs reductions and barriers in hardware.
	ControlNet = ctrlnet.Net
	// CombineOp is a control-network combining operation.
	CombineOp = ctrlnet.Op
)

// Control-network combining operations.
const (
	CombineSum = ctrlnet.OpSum
	CombineMax = ctrlnet.OpMax
	CombineAnd = ctrlnet.OpAnd
	CombineOr  = ctrlnet.OpOr
	CombineXor = ctrlnet.OpXor
)

// NewControlNet builds a hardware combining tree over the given node count
// with the given tree fanout (the CM-5 used 4). Attach it to communicators
// with Comm.AttachControlNetwork.
func NewControlNet(nodes, fanout int) (*ControlNet, error) {
	return ctrlnet.New(nodes, fanout)
}

// Higher-level communication services built on the messaging layers.
type (
	// Comm is a node's participation in an MPI-style communicator
	// providing barrier, all-reduce, broadcast, scatter, and gather.
	Comm = collectives.Comm
	// ReduceOp is a reduction operator for Comm.ReduceBegin.
	ReduceOp = collectives.Op
	// RPC is a deadlock-safe request/reply service on active messages.
	RPC = reqreply.Service
	// RPCCall is one outstanding RPC request.
	RPCCall = reqreply.Call
	// RPCServer computes a reply payload from a request payload.
	RPCServer = reqreply.Server
)

// Reduction operators.
var (
	ReduceSum = collectives.Sum
	ReduceMax = collectives.Max
)

// NewComm attaches a communicator to a node's endpoint. Every node of the
// machine needs one before collectives start.
func NewComm(ep *Endpoint, machineSize int) (*Comm, error) {
	return collectives.New(ep, machineSize)
}

// NewRPC installs a request/reply service; serve may be nil on client-only
// nodes. On dual-network machines (NewDualCM5Machine) replies travel on
// the second network, making round-trip protocols deadlock-safe under full
// request buffers (the paper's footnote 6).
func NewRPC(ep *Endpoint, serve RPCServer) *RPC { return reqreply.New(ep, serve) }

// NewDualCM5Machine builds a machine with two independent CM-5-like data
// networks — requests on one, replies on the other, as on the real CM-5.
func NewDualCM5Machine(opts CM5Options) (*Machine, error) {
	if opts.PacketWords == 0 {
		opts.PacketWords = 4
	}
	mk := func() (network.Network, error) {
		var reorder network.ReorderPolicy
		if opts.HalfOutOfOrder {
			reorder = network.PairSwap()
		}
		return network.NewCM5Net(network.CM5Config{
			Nodes:       opts.Nodes,
			PacketWords: opts.PacketWords,
			Reorder:     reorder,
			Faults:      opts.Faults,
			Capacity:    opts.Capacity,
		})
	}
	req, err := mk()
	if err != nil {
		return nil, err
	}
	rep, err := mk()
	if err != nil {
		return nil, err
	}
	sched, err := cost.NewPaperSchedule(opts.PacketWords)
	if err != nil {
		return nil, err
	}
	return machine.NewDual(req, rep, sched)
}

// Runtime observability, re-exported. Build a hub, attach it to a machine
// with Machine.AttachObserver, drive the run with Machine.Run (the method,
// which ticks the hub's simulated clock), then export what it saw.
type (
	// ObsHub bundles a metrics registry and an event tracer.
	ObsHub = obs.Hub
	// ObsKey identifies one metric series (name + node/proto/event labels).
	ObsKey = obs.Key
	// ObsRegistry holds metric series; export with WritePrometheus or
	// MetricsJSON.
	ObsRegistry = obs.Registry
	// ObsCounter is a monotonically increasing series.
	ObsCounter = obs.Counter
	// ObsLevel is a gauge-style series (named Level to avoid colliding with
	// the instruction-count Gauge).
	ObsLevel = obs.Level
	// ObsHistogram is a fixed-bucket histogram series.
	ObsHistogram = obs.Histogram
	// ObsTracer records structured events; export with WriteChromeTrace.
	ObsTracer = obs.Tracer
	// ObsTraceEvent is one recorded event with simulated-time timestamps.
	ObsTraceEvent = obs.TraceEvent
	// ObsAxis is the paper Feature axis an event is attributed to.
	ObsAxis = obs.Axis
)

// Feature-axis values for trace-event attribution.
const (
	ObsAxisOther      = obs.AxisOther
	ObsAxisBase       = obs.AxisBase
	ObsAxisBufferMgmt = obs.AxisBufferMgmt
	ObsAxisInOrder    = obs.AxisInOrder
	ObsAxisFaultTol   = obs.AxisFaultTol
)

// NewObsHub builds an enabled observability hub.
func NewObsHub() *ObsHub { return obs.NewHub() }

// Analytic cost model (Figure 8), re-exported.
type (
	// ModelParams parameterize the analytic cost model.
	ModelParams = analytic.Params
	// ModelProtocol selects a protocol for the analytic model.
	ModelProtocol = analytic.Protocol
	// SweepPoint is one point of an overhead-vs-packet-size sweep.
	SweepPoint = analytic.SweepPoint
)

// Analytic model protocols.
const (
	ModelFiniteCMAM     = analytic.ProtoFiniteCMAM
	ModelIndefiniteCMAM = analytic.ProtoIndefiniteCMAM
	ModelFiniteCR       = analytic.ProtoFiniteCR
	ModelIndefiniteCR   = analytic.ProtoIndefiniteCR
)

// EvaluateModel computes a protocol's closed-form cost breakdown under a
// schedule — the paper's Figure 8 generalization.
func EvaluateModel(proto ModelProtocol, s *Schedule, prm ModelParams) (Breakdown, error) {
	return analytic.Evaluate(proto, s, prm)
}

// OverheadSweep reproduces Figure 8 (right): overhead fraction for a fixed
// message size across hardware packet sizes.
func OverheadSweep(proto ModelProtocol, messageWords int, packetSizes []int) ([]SweepPoint, error) {
	return analytic.OverheadSweep(proto, messageWords, packetSizes)
}

// CrossoverWords finds the message size where protocol a becomes at least
// as cheap as protocol b (see the crossover ablation).
func CrossoverWords(a, b ModelProtocol, s *Schedule, maxWords int) (int, bool) {
	return analytic.CrossoverWords(a, b, s, maxWords)
}
