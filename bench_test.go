// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment end to end
// and reports the simulated *instruction counts* — the paper's metric — as
// custom benchmark outputs alongside Go's wall-clock numbers. Wall-clock
// time here measures the simulator, not the messaging layer: the
// calibration band for this paper notes that host-runtime overhead swamps
// the microsecond-scale protocol costs being studied, which is exactly why
// the paper (and this reproduction) counts instructions instead.
package msglayer_test

import (
	"testing"

	"msglayer"
	"msglayer/internal/analytic"
	"msglayer/internal/cost"
	"msglayer/internal/experiments"
)

// reportComparisons attaches the experiment's headline numbers to the
// benchmark output and fails the benchmark on any paper divergence.
func reportComparisons(b *testing.B, r experiments.Result, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range r.Comparisons {
		if !c.Match() && c.Note == "" {
			b.Fatalf("%s: measured %d, paper %d", c.Name, c.Measured, c.Paper)
		}
	}
	if len(r.Comparisons) > 0 {
		last := r.Comparisons[len(r.Comparisons)-1]
		b.ReportMetric(float64(last.Measured), "instr")
	}
}

// BenchmarkTable1 regenerates Table 1: single-packet delivery, 20+27
// instructions.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1()
		reportComparisons(b, r, err)
	}
}

// BenchmarkTable2Finite16 regenerates the finite-sequence 16-word panel of
// Table 2 (397 instructions end to end).
func BenchmarkTable2Finite16(b *testing.B) {
	benchTable2(b, 16, false)
}

// BenchmarkTable2Finite1024 regenerates the finite-sequence 1024-word panel
// (11737 instructions).
func BenchmarkTable2Finite1024(b *testing.B) {
	benchTable2(b, 1024, false)
}

// BenchmarkTable2Indefinite16 regenerates the indefinite-sequence 16-word
// panel (481 instructions).
func BenchmarkTable2Indefinite16(b *testing.B) {
	benchTable2(b, 16, true)
}

// BenchmarkTable2Indefinite1024 regenerates the indefinite-sequence
// 1024-word panel (29965 instructions).
func BenchmarkTable2Indefinite1024(b *testing.B) {
	benchTable2(b, 1024, true)
}

// benchTable2 runs one Table 2 panel per iteration through the public API.
func benchTable2(b *testing.B, words int, stream bool) {
	b.Helper()
	var want uint64
	s := cost.MustPaperSchedule(4)
	prm := analytic.Params{
		MessageWords: words,
		OutOfOrder:   analytic.HalfOutOfOrder(s, words),
		AckGroup:     1,
	}
	proto := analytic.ProtoFiniteCMAM
	if stream {
		proto = analytic.ProtoIndefiniteCMAM
	}
	model, err := analytic.Evaluate(proto, s, prm)
	if err != nil {
		b.Fatal(err)
	}
	want = model.Total().Total()

	for i := 0; i < b.N; i++ {
		total := runPanel(b, words, stream)
		if total != want {
			b.Fatalf("total = %d, want %d", total, want)
		}
		b.ReportMetric(float64(total), "instr")
	}
}

// runPanel executes one transfer/stream through the public API and returns
// its total instruction count.
func runPanel(b *testing.B, words int, stream bool) uint64 {
	b.Helper()
	m, err := msglayer.NewCM5Machine(msglayer.CM5Options{Nodes: 2, HalfOutOfOrder: stream})
	if err != nil {
		b.Fatal(err)
	}
	m.Node(0).SetRole(msglayer.RoleSource)
	m.Node(1).SetRole(msglayer.RoleDestination)
	data := make([]msglayer.Word, words)

	if stream {
		src, err := msglayer.NewStream(msglayer.NewEndpoint(m.Node(0)), msglayer.StreamConfig{})
		if err != nil {
			b.Fatal(err)
		}
		delivered := 0
		dst, err := msglayer.NewStream(msglayer.NewEndpoint(m.Node(1)), msglayer.StreamConfig{
			OnDeliver: func(int, uint8, []msglayer.Word) { delivered++ },
		})
		if err != nil {
			b.Fatal(err)
		}
		conn := src.Open(1, 0)
		for off := 0; off < words; off += 4 {
			if err := conn.Send(data[off : off+4]...); err != nil {
				b.Fatal(err)
			}
		}
		err = msglayer.Run(1_000_000,
			msglayer.StepFunc(func() (bool, error) { return conn.Idle(), src.Pump() }),
			msglayer.StepFunc(func() (bool, error) { return conn.Idle(), dst.Pump() }),
		)
		if err != nil {
			b.Fatal(err)
		}
	} else {
		src := msglayer.NewFinite(msglayer.NewEndpoint(m.Node(0)))
		dst := msglayer.NewFinite(msglayer.NewEndpoint(m.Node(1)))
		var got []msglayer.Word
		dst.OnReceive = func(_ int, buf []msglayer.Word) { got = buf }
		tr, err := src.Start(1, data)
		if err != nil {
			b.Fatal(err)
		}
		err = msglayer.Run(1_000_000,
			msglayer.StepFunc(func() (bool, error) { return tr.Done(), src.Pump() }),
			msglayer.StepFunc(func() (bool, error) { return tr.Done(), dst.Pump() }),
		)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != words {
			b.Fatalf("received %d of %d words", len(got), words)
		}
	}
	return m.TotalGauge().Total().Total()
}

// BenchmarkTable3 regenerates the reg/mem/dev subcategory breakdown.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3()
		reportComparisons(b, r, err)
	}
}

// BenchmarkFigure6 regenerates the CMAM-versus-CR comparison (both
// protocols, both message sizes).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure6()
		reportComparisons(b, r, err)
	}
}

// BenchmarkFigure8 regenerates the packet-size sweep, cross-validating the
// analytic model against the simulator at every point.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8()
		reportComparisons(b, r, err)
	}
}

// BenchmarkGroupAcks regenerates the Section 3.2 group-acknowledgement
// ablation.
func BenchmarkGroupAcks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.GroupAckAblation()
		reportComparisons(b, r, err)
	}
}

// BenchmarkImprovedNI regenerates the Section 5 improved-NI ablation.
func BenchmarkImprovedNI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ImprovedNIAblation()
		reportComparisons(b, r, err)
	}
}

// BenchmarkFlitLevelDemo runs the mechanism-level wormhole demonstration.
func BenchmarkFlitLevelDemo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.FlitLevelDemo()
		reportComparisons(b, r, err)
	}
}

// BenchmarkAM4RoundTrip measures the simulator's wall-clock cost of the
// cheapest protocol (a Table 1 round trip of 47 simulated instructions) —
// a sense of the host-overhead-to-simulated-work ratio.
func BenchmarkAM4RoundTrip(b *testing.B) {
	m, err := msglayer.NewCM5Machine(msglayer.CM5Options{Nodes: 2})
	if err != nil {
		b.Fatal(err)
	}
	src := msglayer.NewEndpoint(m.Node(0))
	dst := msglayer.NewEndpoint(m.Node(1))
	dst.Register(1, func(int, []msglayer.Word) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.AM4(1, 1, 1, 2, 3, 4); err != nil {
			b.Fatal(err)
		}
		if ok, err := dst.PollSingle(); err != nil || !ok {
			b.Fatal("poll failed")
		}
	}
	b.ReportMetric(47, "instr/op")
}
