module msglayer

go 1.22
